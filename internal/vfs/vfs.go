// Package vfs is a small in-memory filesystem substrate over the simulated
// kernel: inodes, directory entries, file descriptions, pipes, unix-socket
// pairs, fork, and mmap — enough surface to run the LMBench-shaped
// workloads of the paper's Table 5 (null/stat/open/close/create/delete/
// ctxsw/pipe/unix/fork/mmap) with and without OEMU instrumentation, and to
// serve as an additional fuzzing target.
//
// All metadata lives in simulated kernel memory and is accessed through the
// instrumented API, so the overhead ratio instrumented/uninstrumented is
// representative of the paper's kernel-wide instrumentation.
package vfs

import (
	"ozz/internal/kernel"
	"ozz/internal/trace"
)

// Site IDs for the vfs substrate (its own 16-bit space, above the modules).
const vfsBase trace.InstrID = 0x40 << 16

const (
	siteDirName = vfsBase + iota + 1
	siteDirIno
	siteInoMode
	siteInoSize
	siteInoNlink
	siteInoData
	siteFileIno
	siteFilePos
	siteFileRef
	siteData
	sitePipeHead
	sitePipeTail
	sitePipeBuf
	sitePid
	siteMapLen
)

const (
	dirSlots  = 64
	blockSize = 8 // words per data block
	// Mode bits.
	ModeFile = 1
	ModePipe = 2
	ModeSock = 3
)

// FS is one mounted filesystem instance plus its open-file machinery.
type FS struct {
	K *kernel.Kernel
	// root directory: dirSlots entries x 2 words (name, inode).
	root trace.Addr
	// pidCounter is a global word incremented by the null syscall.
	pidCounter trace.Addr

	files []trace.Addr // open file descriptions by fd (0 = closed)
}

// New mounts a fresh filesystem on k.
func New(k *kernel.Kernel) *FS {
	return &FS{
		K:          k,
		root:       k.Mem.AllocZeroed(dirSlots * 2),
		pidCounter: k.Mem.AllocZeroed(1),
	}
}

// Getpid is the "null" syscall of LMBench: the cheapest possible kernel
// round trip (one load, one store).
func (fs *FS) Getpid(t *kernel.Task) uint64 {
	defer t.Enter("getpid")()
	v := t.Load(sitePid, fs.pidCounter)
	t.Store(sitePid, fs.pidCounter, v+1)
	return v
}

// lookup scans the root directory for name; returns the slot address and
// the inode (0 if absent).
func (fs *FS) lookup(t *kernel.Task, name uint64) (slot trace.Addr, inode uint64) {
	var free trace.Addr
	for i := 0; i < dirSlots; i++ {
		s := kernel.Field(fs.root, i*2)
		n := t.Load(siteDirName, s)
		if n == name && name != 0 {
			return s, t.Load(siteDirIno, s+8)
		}
		if n == 0 && free == 0 {
			free = s
		}
	}
	return free, 0
}

// Creat creates (or truncates) a file and returns an open fd, or an error
// (-1) when the directory is full.
func (fs *FS) Creat(t *kernel.Task, name uint64) int {
	defer t.Enter("sys_creat")()
	if name == 0 {
		return -1
	}
	slot, ino := fs.lookup(t, name)
	if ino == 0 {
		if slot == 0 {
			return -1 // directory full
		}
		inode := t.Kzalloc(4)
		data := t.Kzalloc(blockSize)
		t.Store(siteInoMode, kernel.Field(inode, 0), ModeFile)
		t.Store(siteInoSize, kernel.Field(inode, 1), 0)
		t.Store(siteInoNlink, kernel.Field(inode, 2), 1)
		t.Store(siteInoData, kernel.Field(inode, 3), uint64(data))
		t.Store(siteDirName, slot, name)
		t.Store(siteDirIno, slot+8, uint64(inode))
		ino = uint64(inode)
	} else {
		t.Store(siteInoSize, kernel.Field(trace.Addr(ino), 1), 0)
	}
	return fs.installFD(t, trace.Addr(ino))
}

// installFD allocates an open file description for the inode.
func (fs *FS) installFD(t *kernel.Task, inode trace.Addr) int {
	f := t.Kzalloc(3)
	t.Store(siteFileIno, kernel.Field(f, 0), uint64(inode))
	t.Store(siteFilePos, kernel.Field(f, 1), 0)
	t.Store(siteFileRef, kernel.Field(f, 2), 1)
	for i, a := range fs.files {
		if a == 0 {
			fs.files[i] = f
			return i
		}
	}
	fs.files = append(fs.files, f)
	return len(fs.files) - 1
}

func (fs *FS) file(fd int) trace.Addr {
	if fd < 0 || fd >= len(fs.files) {
		return 0
	}
	return fs.files[fd]
}

// Open opens an existing file.
func (fs *FS) Open(t *kernel.Task, name uint64) int {
	defer t.Enter("sys_open")()
	_, ino := fs.lookup(t, name)
	if ino == 0 {
		return -1
	}
	return fs.installFD(t, trace.Addr(ino))
}

// Close drops the fd; the description is freed when its refcount reaches
// zero.
func (fs *FS) Close(t *kernel.Task, fd int) int {
	defer t.Enter("sys_close")()
	f := fs.file(fd)
	if f == 0 {
		return -1
	}
	fs.files[fd] = 0
	ref := t.Load(siteFileRef, kernel.Field(f, 2))
	if ref <= 1 {
		t.Kfree(f)
	} else {
		t.Store(siteFileRef, kernel.Field(f, 2), ref-1)
	}
	return 0
}

// Stat returns the file's size, or ^0 when absent.
func (fs *FS) Stat(t *kernel.Task, name uint64) uint64 {
	defer t.Enter("sys_stat")()
	_, ino := fs.lookup(t, name)
	if ino == 0 {
		return ^uint64(0)
	}
	inode := trace.Addr(ino)
	t.Load(siteInoMode, kernel.Field(inode, 0))
	t.Load(siteInoNlink, kernel.Field(inode, 2))
	return t.Load(siteInoSize, kernel.Field(inode, 1))
}

// Unlink removes the directory entry and frees the inode when its link
// count reaches zero.
func (fs *FS) Unlink(t *kernel.Task, name uint64) int {
	defer t.Enter("sys_unlink")()
	slot, ino := fs.lookup(t, name)
	if ino == 0 {
		return -1
	}
	t.Store(siteDirName, slot, 0)
	t.Store(siteDirIno, slot+8, 0)
	inode := trace.Addr(ino)
	nlink := t.Load(siteInoNlink, kernel.Field(inode, 2))
	if nlink <= 1 {
		data := t.Load(siteInoData, kernel.Field(inode, 3))
		if data != 0 {
			t.Kfree(trace.Addr(data))
		}
		t.Kfree(inode)
	} else {
		t.Store(siteInoNlink, kernel.Field(inode, 2), nlink-1)
	}
	return 0
}

// Write appends one word to the file.
func (fs *FS) Write(t *kernel.Task, fd int, v uint64) int {
	defer t.Enter("sys_write")()
	f := fs.file(fd)
	if f == 0 {
		return -1
	}
	inode := trace.Addr(t.Load(siteFileIno, kernel.Field(f, 0)))
	size := t.Load(siteInoSize, kernel.Field(inode, 1))
	if size >= blockSize {
		return -1 // file full (single block)
	}
	data := trace.Addr(t.Load(siteInoData, kernel.Field(inode, 3)))
	t.Store(siteData, kernel.Field(data, int(size)), v)
	t.Store(siteInoSize, kernel.Field(inode, 1), size+1)
	return 1
}

// Read reads the word at the descriptor position and advances it.
func (fs *FS) Read(t *kernel.Task, fd int) (uint64, bool) {
	defer t.Enter("sys_read")()
	f := fs.file(fd)
	if f == 0 {
		return 0, false
	}
	inode := trace.Addr(t.Load(siteFileIno, kernel.Field(f, 0)))
	pos := t.Load(siteFilePos, kernel.Field(f, 1))
	size := t.Load(siteInoSize, kernel.Field(inode, 1))
	if pos >= size {
		return 0, false
	}
	data := trace.Addr(t.Load(siteInoData, kernel.Field(inode, 3)))
	v := t.Load(siteData, kernel.Field(data, int(pos)))
	t.Store(siteFilePos, kernel.Field(f, 1), pos+1)
	return v, true
}

// Pipe builds an in-kernel ring (modelled on the Fig. 1 watch-queue pipe,
// with both barriers present) and returns its object address. The ring has
// blockSize slots.
type Pipe struct {
	fs  *FS
	obj trace.Addr // [0]=head [1]=tail [2]=buf
}

// NewPipe allocates a pipe (also the "unix" socketpair substrate).
func (fs *FS) NewPipe(t *kernel.Task) *Pipe {
	defer t.Enter("sys_pipe")()
	obj := t.Kzalloc(3)
	buf := t.Kzalloc(blockSize)
	t.Store(sitePipeBuf, kernel.Field(obj, 2), uint64(buf))
	return &Pipe{fs: fs, obj: obj}
}

// Write posts one word; returns false when full. Publisher-side barrier
// included (correct code).
func (p *Pipe) Write(t *kernel.Task, v uint64) bool {
	defer t.Enter("pipe_write")()
	head := t.Load(sitePipeHead, kernel.Field(p.obj, 0))
	tail := t.Load(sitePipeTail, kernel.Field(p.obj, 1))
	if head-tail >= blockSize {
		return false
	}
	buf := trace.Addr(t.Load(sitePipeBuf, kernel.Field(p.obj, 2)))
	t.Store(siteData, kernel.Field(buf, int(head%blockSize)), v)
	t.Wmb(sitePipeHead)
	t.Store(sitePipeHead, kernel.Field(p.obj, 0), head+1)
	return true
}

// Read consumes one word; ok=false when empty. Consumer-side barrier
// included.
func (p *Pipe) Read(t *kernel.Task) (uint64, bool) {
	defer t.Enter("pipe_read")()
	head := t.Load(sitePipeHead, kernel.Field(p.obj, 0))
	tail := t.Load(sitePipeTail, kernel.Field(p.obj, 1))
	if head == tail {
		return 0, false
	}
	t.Rmb(sitePipeTail)
	buf := trace.Addr(t.Load(sitePipeBuf, kernel.Field(p.obj, 2)))
	v := t.Load(siteData, kernel.Field(buf, int(tail%blockSize)))
	t.Store(sitePipeTail, kernel.Field(p.obj, 1), tail+1)
	return v, true
}

// Fork models task creation: allocate a task struct, copy the fd table
// references (bumping refcounts), and register a new kernel task.
func (fs *FS) Fork(t *kernel.Task) *kernel.Task {
	defer t.Enter("sys_fork")()
	ts := t.Kzalloc(4)
	t.Store(siteMapLen, kernel.Field(ts, 0), uint64(t.ID))
	for _, f := range fs.files {
		if f == 0 {
			continue
		}
		ref := t.Load(siteFileRef, kernel.Field(f, 2))
		t.Store(siteFileRef, kernel.Field(f, 2), ref+1)
	}
	return fs.K.NewTask(t.CPU())
}

// Mmap allocates n blocks of address space and touches each page word.
func (fs *FS) Mmap(t *kernel.Task, blocks int) trace.Addr {
	defer t.Enter("sys_mmap")()
	if blocks <= 0 || blocks > 64 {
		return 0
	}
	region := t.Kzalloc(blocks * blockSize)
	for b := 0; b < blocks; b++ {
		t.Store(siteData, kernel.Field(region, b*blockSize), 0) // touch
	}
	return region
}

// MmapTouch is Mmap plus a fault-in of EVERY word of the region (the
// LMBench mmap test touches each mapped page; touching maximizes the
// instrumented-access density, which is why mmap is Table 5's worst case).
func (fs *FS) MmapTouch(t *kernel.Task, blocks int) trace.Addr {
	region := fs.Mmap(t, blocks)
	if region == 0 {
		return 0
	}
	defer t.Enter("sys_mmap")()
	for w := 0; w < blocks*blockSize; w++ {
		t.Store(siteData, kernel.Field(region, w), uint64(w))
		t.Load(siteData, kernel.Field(region, w))
	}
	return region
}

// Munmap releases an mmapped region.
func (fs *FS) Munmap(t *kernel.Task, region trace.Addr) {
	defer t.Enter("sys_munmap")()
	t.Kfree(region)
}
