package vfs

import (
	"testing"

	"ozz/internal/kernel"
	"ozz/internal/sched"
)

// run executes body on a fresh kernel+fs inside a sequential session.
func run(t *testing.T, body func(fs *FS, task *kernel.Task)) {
	t.Helper()
	k := kernel.New(2)
	fs := New(k)
	task := k.NewTask(0)
	s := sched.NewSession(sched.Sequential{})
	s.Spawn(0, 0, func(st *sched.Task) {
		task.Bind(st)
		body(fs, task)
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
}

func TestCreatWriteReadStat(t *testing.T) {
	run(t, func(fs *FS, task *kernel.Task) {
		fd := fs.Creat(task, 0xf11e)
		if fd < 0 {
			t.Errorf("creat failed")
		}
		for i := uint64(1); i <= 3; i++ {
			if fs.Write(task, fd, i*10) != 1 {
				t.Errorf("write %d failed", i)
			}
		}
		if got := fs.Stat(task, 0xf11e); got != 3 {
			t.Errorf("stat size = %d, want 3", got)
		}
		if fs.Close(task, fd) != 0 {
			t.Errorf("close failed")
		}
		fd2 := fs.Open(task, 0xf11e)
		for want := uint64(10); want <= 30; want += 10 {
			v, ok := fs.Read(task, fd2)
			if !ok || v != want {
				t.Errorf("read = %d/%v, want %d", v, ok, want)
			}
		}
		if _, ok := fs.Read(task, fd2); ok {
			t.Errorf("read past EOF succeeded")
		}
	})
}

func TestOpenMissing(t *testing.T) {
	run(t, func(fs *FS, task *kernel.Task) {
		if fs.Open(task, 0x404) >= 0 {
			t.Errorf("open of missing file succeeded")
		}
		if fs.Stat(task, 0x404) != ^uint64(0) {
			t.Errorf("stat of missing file succeeded")
		}
	})
}

func TestUnlinkFreesInode(t *testing.T) {
	run(t, func(fs *FS, task *kernel.Task) {
		fd := fs.Creat(task, 0xaa)
		fs.Close(task, fd)
		before, _ := task.K.Mem.Stats()
		if fs.Unlink(task, 0xaa) != 0 {
			t.Errorf("unlink failed")
		}
		_, frees := task.K.Mem.Stats()
		if frees < 2 { // inode + data block
			t.Errorf("unlink freed %d objects (allocs=%d)", frees, before)
		}
		if fs.Open(task, 0xaa) >= 0 {
			t.Errorf("open after unlink succeeded")
		}
	})
}

func TestCreatTruncates(t *testing.T) {
	run(t, func(fs *FS, task *kernel.Task) {
		fd := fs.Creat(task, 0xbb)
		fs.Write(task, fd, 1)
		fs.Close(task, fd)
		fd2 := fs.Creat(task, 0xbb)
		if got := fs.Stat(task, 0xbb); got != 0 {
			t.Errorf("creat did not truncate: size %d", got)
		}
		fs.Close(task, fd2)
	})
}

func TestFDReuse(t *testing.T) {
	run(t, func(fs *FS, task *kernel.Task) {
		a := fs.Creat(task, 1)
		fs.Close(task, a)
		b := fs.Creat(task, 2)
		if b != a {
			t.Errorf("fd not reused: %d then %d", a, b)
		}
	})
}

func TestPipeRing(t *testing.T) {
	run(t, func(fs *FS, task *kernel.Task) {
		p := fs.NewPipe(task)
		if _, ok := p.Read(task); ok {
			t.Errorf("read from empty pipe succeeded")
		}
		for i := uint64(0); i < blockSize; i++ {
			if !p.Write(task, i) {
				t.Errorf("write %d failed", i)
			}
		}
		if p.Write(task, 99) {
			t.Errorf("write to full pipe succeeded")
		}
		for i := uint64(0); i < blockSize; i++ {
			v, ok := p.Read(task)
			if !ok || v != i {
				t.Errorf("read = %d/%v, want %d", v, ok, i)
			}
		}
		// Wrap-around.
		p.Write(task, 7)
		if v, ok := p.Read(task); !ok || v != 7 {
			t.Errorf("wrapped read = %d/%v", v, ok)
		}
	})
}

func TestForkBumpsRefcounts(t *testing.T) {
	run(t, func(fs *FS, task *kernel.Task) {
		fd := fs.Creat(task, 5)
		child := fs.Fork(task)
		if child == nil || child.ID == task.ID {
			t.Errorf("fork returned bad task")
		}
		// Close once: the description must survive (child's reference).
		f := fs.files[fd]
		fs.Close(task, fd)
		if task.K.Mem.State(f) != 1 /* Valid */ {
			t.Errorf("file description freed despite child reference")
		}
	})
}

func TestMmapMunmap(t *testing.T) {
	run(t, func(fs *FS, task *kernel.Task) {
		r := fs.Mmap(task, 4)
		if r == 0 {
			t.Errorf("mmap failed")
		}
		fs.Munmap(task, r)
		if fs.Mmap(task, 0) != 0 || fs.Mmap(task, 1000) != 0 {
			t.Errorf("mmap accepted bad sizes")
		}
	})
}

func TestGetpidCounts(t *testing.T) {
	run(t, func(fs *FS, task *kernel.Task) {
		a := fs.Getpid(task)
		b := fs.Getpid(task)
		if b != a+1 {
			t.Errorf("getpid: %d then %d", a, b)
		}
	})
}

func TestDirectoryFull(t *testing.T) {
	run(t, func(fs *FS, task *kernel.Task) {
		for i := 0; i < dirSlots; i++ {
			fd := fs.Creat(task, uint64(i+1))
			if fd < 0 {
				t.Fatalf("creat %d failed early", i)
			}
			fs.Close(task, fd)
		}
		if fs.Creat(task, 0x999) >= 0 {
			t.Errorf("creat succeeded on full directory")
		}
		// Unlinking one slot makes room again.
		fs.Unlink(task, 1)
		if fs.Creat(task, 0x999) < 0 {
			t.Errorf("creat failed after unlink freed a slot")
		}
	})
}
