package sched

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ozz/internal/trace"
)

// TestSequentialOrder: Sequential runs tasks to completion in spawn order.
func TestSequentialOrder(t *testing.T) {
	var log []int
	s := NewSession(Sequential{})
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(i, 0, func(h *Task) {
			h.Yield(1)
			log = append(log, i)
			h.Yield(2)
			log = append(log, i+10)
		})
	}
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	want := []int{0, 10, 1, 11, 2, 12}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", log, want)
	}
}

// TestBreakpointBefore: the switch happens before the matched instruction
// executes.
func TestBreakpointBefore(t *testing.T) {
	var log []string
	bp := &Breakpoint{FromTask: 0, Instr: 5, Pos: PosBefore, ToTask: 1}
	s := NewSession(bp)
	s.Spawn(0, 0, func(h *Task) {
		h.Yield(1)
		log = append(log, "a1")
		h.Yield(5)
		log = append(log, "a5")
	})
	s.Spawn(1, 1, func(h *Task) {
		h.Yield(2)
		log = append(log, "b")
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	want := []string{"a1", "b", "a5"}
	if fmt.Sprint(log) != fmt.Sprint(want) || !bp.Fired {
		t.Fatalf("order %v (fired=%v), want %v", log, bp.Fired, want)
	}
}

// TestBreakpointAfter: the switch happens after the matched instruction
// executes (at the task's next scheduling point).
func TestBreakpointAfter(t *testing.T) {
	var log []string
	bp := &Breakpoint{FromTask: 0, Instr: 5, Pos: PosAfter, ToTask: 1}
	s := NewSession(bp)
	s.Spawn(0, 0, func(h *Task) {
		h.Yield(5)
		log = append(log, "a5")
		h.Yield(6)
		log = append(log, "a6")
	})
	s.Spawn(1, 1, func(h *Task) {
		h.Yield(2)
		log = append(log, "b")
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	want := []string{"a5", "b", "a6"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", log, want)
	}
}

// TestBreakpointOccurrence: the Nth execution of the instruction matches.
func TestBreakpointOccurrence(t *testing.T) {
	var log []string
	bp := &Breakpoint{FromTask: 0, Instr: 5, Occurrence: 3, Pos: PosBefore, ToTask: 1}
	s := NewSession(bp)
	s.Spawn(0, 0, func(h *Task) {
		for i := 0; i < 4; i++ {
			h.Yield(5)
			log = append(log, fmt.Sprintf("a%d", i))
		}
	})
	s.Spawn(1, 1, func(h *Task) {
		h.Yield(2)
		log = append(log, "b")
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	want := []string{"a0", "a1", "b", "a2", "a3"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", log, want)
	}
}

// TestBreakpointNotFired: a breakpoint on an unreached instruction leaves
// Fired false and both tasks complete.
func TestBreakpointNotFired(t *testing.T) {
	bp := &Breakpoint{FromTask: 0, Instr: 999, Pos: PosBefore, ToTask: 1}
	s := NewSession(bp)
	done := 0
	s.Spawn(0, 0, func(h *Task) { h.Yield(1); done++ })
	s.Spawn(1, 1, func(h *Task) { h.Yield(1); done++ })
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	if bp.Fired || done != 2 {
		t.Fatalf("fired=%v done=%d", bp.Fired, done)
	}
}

// TestCrashAbortsSession: a panicking task aborts the session; the peer
// unwinds and Run returns the panic value.
func TestCrashAbortsSession(t *testing.T) {
	bp := &Breakpoint{FromTask: 0, Instr: 5, Pos: PosBefore, ToTask: 1}
	s := NewSession(bp)
	reachedTail := false
	s.Spawn(0, 0, func(h *Task) {
		h.Yield(5) // switch to task 1, which crashes
		reachedTail = true
	})
	s.Spawn(1, 1, func(h *Task) {
		h.Yield(1)
		panic("simulated kernel crash")
	})
	aborted := s.Run()
	if aborted != "simulated kernel crash" {
		t.Fatalf("aborted = %v", aborted)
	}
	if reachedTail {
		t.Fatal("suspended task must unwind, not resume, after the abort")
	}
}

// TestBlockSpinHandoff: a spin-blocked task lets the peer run and retries.
func TestBlockSpinHandoff(t *testing.T) {
	locked := true
	var log []string
	s := NewSession(Sequential{})
	s.Spawn(0, 0, func(h *Task) {
		h.Yield(1)
		for locked {
			h.BlockSpin()
		}
		h.ClearSpin()
		log = append(log, "acquired")
	})
	s.Spawn(1, 1, func(h *Task) {
		h.Yield(2)
		locked = false
		log = append(log, "released")
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	want := []string{"released", "acquired"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", log, want)
	}
}

// TestDeadlockDetected: a task spinning with no peer to release it aborts
// with a Deadlock.
func TestDeadlockDetected(t *testing.T) {
	s := NewSession(Sequential{})
	s.Spawn(0, 0, func(h *Task) {
		for {
			h.BlockSpin()
		}
	})
	aborted := s.Run()
	if _, ok := aborted.(*Deadlock); !ok {
		t.Fatalf("expected deadlock, got %v", aborted)
	}
}

// TestSpinLimitLivelock: two tasks spinning on each other forever hit the
// spin limit.
func TestSpinLimitLivelock(t *testing.T) {
	s := NewSession(Sequential{})
	for i := 0; i < 2; i++ {
		s.Spawn(i, i, func(h *Task) {
			for {
				h.BlockSpin()
			}
		})
	}
	aborted := s.Run()
	if _, ok := aborted.(*Deadlock); !ok {
		t.Fatalf("expected deadlock/livelock, got %v", aborted)
	}
}

// TestDynamicSpawn: a running task can spawn another (fork), which is then
// scheduled.
func TestDynamicSpawn(t *testing.T) {
	var log []string
	s := NewSession(Sequential{})
	s.Spawn(0, 0, func(h *Task) {
		h.Yield(1)
		log = append(log, "parent")
		h.session.Spawn(1, 1, func(h2 *Task) {
			h2.Yield(1)
			log = append(log, "child")
		})
		h.Yield(2)
		log = append(log, "parent2")
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	want := []string{"parent", "parent2", "child"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", log, want)
	}
}

// TestRandomPolicyDeterministic: the same seed yields the same schedule.
func TestRandomPolicyDeterministic(t *testing.T) {
	run := func(seed int64) string {
		var log []string
		s := NewSession(&Random{Seed: seed, Period: 2})
		for i := 0; i < 3; i++ {
			i := i
			s.Spawn(i, i, func(h *Task) {
				for j := 0; j < 5; j++ {
					h.Yield(trace.InstrID(j + 1))
					log = append(log, fmt.Sprintf("%d.%d", i, j))
				}
			})
		}
		if aborted := s.Run(); aborted != nil {
			t.Fatalf("aborted: %v", aborted)
		}
		return fmt.Sprint(log)
	}
	if run(1) != run(1) {
		t.Fatal("same seed must give the same schedule")
	}
	if run(1) == run(2) && run(3) == run(1) {
		t.Fatal("different seeds should usually differ")
	}
}

// TestMigrate: Migrate changes the CPU visible through the handle.
func TestMigrate(t *testing.T) {
	s := NewSession(Sequential{})
	var cpus []int
	s.Spawn(0, 1, func(h *Task) {
		cpus = append(cpus, h.CPU)
		h.Migrate(3)
		cpus = append(cpus, h.CPU)
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	if fmt.Sprint(cpus) != "[1 3]" {
		t.Fatalf("cpus = %v", cpus)
	}
}

// TestYieldCount: sessions count scheduling points.
func TestYieldCount(t *testing.T) {
	s := NewSession(Sequential{})
	s.Spawn(0, 0, func(h *Task) {
		for i := 0; i < 7; i++ {
			h.Yield(1)
		}
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	if s.Yields() != 7 {
		t.Fatalf("yields = %d, want 7", s.Yields())
	}
}

// TestNoGoroutineLeak: sessions must not leak goroutines — a fuzzer runs
// millions of them. Both clean completions and aborted (crashing) sessions
// must unwind every task goroutine.
func TestNoGoroutineLeak(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		s := NewSession(Sequential{})
		for id := 0; id < 3; id++ {
			id := id
			s.Spawn(id, id, func(h *Task) {
				h.Yield(1)
				if id == 2 && i%2 == 0 {
					panic("boom") // aborting path
				}
				h.Yield(2)
			})
		}
		s.Run()
	}
	// Let unwinding goroutines finish.
	for try := 0; try < 100; try++ {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
