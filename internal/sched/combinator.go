package sched

import (
	"ozz/internal/trace"
)

// Predicate is a scheduling-point condition: it is consulted with the task
// that reached the scheduling point and the instruction about to execute,
// and reports whether a guarded policy should be allowed to act. Predicates
// are the programmable-scheduling layer (eBPF-style "switch when this
// condition holds"): new migration/deferral scenarios compose predicates
// with existing policies instead of adding new policy types. A Predicate
// may be stateful (e.g. an occurrence counter); construct a fresh one per
// session.
type Predicate func(cur *Task, instr trace.InstrID) bool

// OnNthOccurrence returns a stateful predicate that holds exactly from the
// n-th time (counting from 1; n <= 0 means 1) instruction instr reaches a
// scheduling point, on any task. It is the predicate form of Breakpoint's
// occurrence matching.
func OnNthOccurrence(instr trace.InstrID, n int) Predicate {
	if n <= 0 {
		n = 1
	}
	seen := 0
	return func(_ *Task, at trace.InstrID) bool {
		if seen >= n {
			return true
		}
		if at != instr {
			return false
		}
		seen++
		return seen >= n
	}
}

// OnTaskCPU returns a predicate that holds while task id is on simulated
// CPU cpu. A task that was never spawned never satisfies it.
func OnTaskCPU(id, cpu int) Predicate {
	return func(cur *Task, _ trace.InstrID) bool {
		t := cur.session.byID[id]
		return t != nil && t.CPU == cpu
	}
}

// OnTask returns a predicate that holds when the task at the scheduling
// point is task id.
func OnTask(id int) Predicate {
	return func(cur *Task, _ trace.InstrID) bool { return cur.ID == id }
}

// And returns the conjunction of the given predicates. With no operands it
// always holds.
func And(ps ...Predicate) Predicate {
	return func(cur *Task, instr trace.InstrID) bool {
		for _, p := range ps {
			if !p(cur, instr) {
				return false
			}
		}
		return true
	}
}

// Or returns the disjunction of the given predicates. With no operands it
// never holds.
func Or(ps ...Predicate) Predicate {
	return func(cur *Task, instr trace.InstrID) bool {
		for _, p := range ps {
			if p(cur, instr) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Predicate) Predicate {
	return func(cur *Task, instr trace.InstrID) bool { return !p(cur, instr) }
}

// Guarded consults Inner only at scheduling points where When holds; at all
// other points the current task continues. It turns any policy into a
// conditional one ("preempt randomly, but only once instr X has executed",
// "switch only while task 2 is on CPU 0") without touching the policy
// itself. The dispatch path allocates nothing: the predicate and the inner
// policy are constructed once, per session.
type Guarded struct {
	Inner Policy
	When  Predicate
}

// First delegates to the inner policy.
func (g *Guarded) First(order []int) int { return g.Inner.First(order) }

// OnYield consults the guard, then the inner policy.
func (g *Guarded) OnYield(cur *Task, instr trace.InstrID) (int, bool) {
	if !g.When(cur, instr) {
		return 0, false
	}
	return g.Inner.OnYield(cur, instr)
}

// MigrateAt performs a real cross-CPU move at the scheduling point where the
// inner policy acts: whenever Inner switches tasks (or arms a PosAfter
// switch), the task with id Task is moved to CPU ToCPU via Task.Migrate.
// The move deliberately does NOT flush any OEMU store buffer — a migration
// suspends and resumes the task exactly like any other preemption in this
// scheduler — so stores delayed by a hypothetical-barrier test stay delayed
// across the move, and per-CPU addresses resolved after it (Task.CPU feeds
// kernel per-CPU address resolution) land on the new CPU's slot. This is
// what lets the sbitmap bug (Table 4 #6, §6.2) reproduce organically
// instead of via the retired manual assist.
type MigrateAt struct {
	// Inner is the policy whose switch decision triggers the migration
	// (typically a *Breakpoint carrying a scheduling hint).
	Inner Policy
	// Task is the id of the task to migrate.
	Task int
	// ToCPU is the destination simulated CPU.
	ToCPU int

	// Migrations counts moves actually performed (a move to the CPU the
	// task is already on is not counted and not performed).
	Migrations int
}

// First delegates to the inner policy.
func (m *MigrateAt) First(order []int) int { return m.Inner.First(order) }

// OnYield delegates to the inner policy and migrates when it acts. The
// migration happens before control transfers, so the migrated task observes
// its new CPU the next time it runs.
func (m *MigrateAt) OnYield(cur *Task, instr trace.InstrID) (int, bool) {
	wasArmed := cur.armedSwitch >= 0
	id, doSwitch := m.Inner.OnYield(cur, instr)
	if doSwitch || (!wasArmed && cur.armedSwitch >= 0) {
		if t := cur.session.byID[m.Task]; t != nil && t.CPU != m.ToCPU {
			t.Migrate(m.ToCPU)
			m.Migrations++
		}
	}
	return id, doSwitch
}

// Session returns the session the task belongs to. Strategies use it to
// spawn deferred-work tasks (softirq/workqueue handlers) into the running
// session from a policy hook.
func (t *Task) Session() *Session { return t.session }
