package sched

import (
	"fmt"
	"testing"

	"ozz/internal/trace"
)

// TestOnNthOccurrence: the predicate latches on from the n-th sighting of
// the instruction and stays true afterwards, on any task.
func TestOnNthOccurrence(t *testing.T) {
	p := OnNthOccurrence(5, 2)
	s := NewSession(Sequential{})
	tk := s.Spawn(0, 0, func(h *Task) {})
	if p(tk, 5) {
		t.Fatal("held on first occurrence with n=2")
	}
	if p(tk, 7) {
		t.Fatal("held on a different instruction")
	}
	if !p(tk, 5) {
		t.Fatal("did not hold on second occurrence")
	}
	if !p(tk, 9) {
		t.Fatal("did not stay latched after the n-th occurrence")
	}
	s.Run()

	// n <= 0 means 1.
	q := OnNthOccurrence(3, 0)
	s2 := NewSession(Sequential{})
	tk2 := s2.Spawn(0, 0, func(h *Task) {})
	if !q(tk2, 3) {
		t.Fatal("n=0 should latch on the first occurrence")
	}
	s2.Run()
}

// TestOnTaskCPUAndOnTask: CPU- and identity-based predicates follow live
// session state, including migrations; an unspawned task never matches.
func TestOnTaskCPUAndOnTask(t *testing.T) {
	s := NewSession(Sequential{})
	var results []bool
	s.Spawn(0, 0, func(h *Task) {
		on0 := OnTaskCPU(0, 0)
		results = append(results, on0(h, 1))             // task 0 on CPU 0
		results = append(results, OnTaskCPU(0, 1)(h, 1)) // wrong CPU
		results = append(results, OnTaskCPU(9, 0)(h, 1)) // never spawned
		h.Migrate(1)
		results = append(results, on0(h, 1)) // moved away
		results = append(results, OnTask(0)(h, 1))
		results = append(results, OnTask(1)(h, 1))
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	want := []bool{true, false, false, false, true, false}
	if fmt.Sprint(results) != fmt.Sprint(want) {
		t.Fatalf("results = %v, want %v", results, want)
	}
}

// TestPredicateCombinators: And/Or/Not compose, and the empty operand cases
// are the respective identities (And() always holds, Or() never does).
func TestPredicateCombinators(t *testing.T) {
	yes := Predicate(func(*Task, trace.InstrID) bool { return true })
	no := Predicate(func(*Task, trace.InstrID) bool { return false })
	cases := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"and-empty", And(), true},
		{"and-true", And(yes, yes), true},
		{"and-mixed", And(yes, no), false},
		{"or-empty", Or(), false},
		{"or-mixed", Or(no, yes), true},
		{"or-false", Or(no, no), false},
		{"not", Not(no), true},
		{"not-not", Not(Not(no)), false},
	}
	for _, c := range cases {
		if got := c.p(nil, 0); got != c.want {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestGuardedPolicy: the inner policy is consulted only at points where the
// predicate holds — here a breakpoint that would fire at instruction 5 is
// suppressed until the guard's instruction 8 has been seen.
func TestGuardedPolicy(t *testing.T) {
	var log []string
	bp := &Breakpoint{FromTask: 0, Instr: 5, Pos: PosBefore, ToTask: 1}
	g := &Guarded{Inner: bp, When: OnNthOccurrence(8, 1)}
	s := NewSession(g)
	s.Spawn(0, 0, func(h *Task) {
		h.Yield(5) // guard not yet satisfied: no switch
		log = append(log, "a5-early")
		h.Yield(8) // satisfies the guard
		log = append(log, "a8")
		h.Yield(5) // now the breakpoint fires
		log = append(log, "a5-late")
	})
	s.Spawn(1, 1, func(h *Task) {
		h.Yield(2)
		log = append(log, "b")
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	want := []string{"a5-early", "a8", "b", "a5-late"}
	if fmt.Sprint(log) != fmt.Sprint(want) || !bp.Fired {
		t.Fatalf("order %v (fired=%v), want %v", log, bp.Fired, want)
	}
}

// TestMigrateAtOnSwitch: when the inner breakpoint switches (PosBefore),
// the target task is moved to the destination CPU before control
// transfers, and the move is counted exactly once.
func TestMigrateAtOnSwitch(t *testing.T) {
	bp := &Breakpoint{FromTask: 0, Instr: 5, Pos: PosBefore, ToTask: 1}
	m := &MigrateAt{Inner: bp, Task: 1, ToCPU: 0}
	s := NewSession(m)
	var observed []int
	s.Spawn(0, 0, func(h *Task) {
		h.Yield(5)
	})
	s.Spawn(1, 1, func(h *Task) {
		h.Yield(2)
		observed = append(observed, h.CPU)
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	if fmt.Sprint(observed) != "[0]" {
		t.Fatalf("observer ran on CPUs %v, want [0]", observed)
	}
	if m.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", m.Migrations)
	}
}

// TestMigrateAtOnArmedSwitch: a PosAfter breakpoint arms the switch instead
// of performing it; MigrateAt must migrate at the arming point too (the
// switch is then taken at the task's next scheduling point).
func TestMigrateAtOnArmedSwitch(t *testing.T) {
	bp := &Breakpoint{FromTask: 0, Instr: 5, Pos: PosAfter, ToTask: 1}
	m := &MigrateAt{Inner: bp, Task: 1, ToCPU: 0}
	s := NewSession(m)
	var observed []int
	s.Spawn(0, 0, func(h *Task) {
		h.Yield(5)
		h.Yield(6)
	})
	s.Spawn(1, 1, func(h *Task) {
		h.Yield(2)
		observed = append(observed, h.CPU)
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	if fmt.Sprint(observed) != "[0]" {
		t.Fatalf("observer ran on CPUs %v, want [0]", observed)
	}
	if m.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", m.Migrations)
	}
}

// TestMigrateAtNoop: a move to the CPU the task already occupies is neither
// performed nor counted, and an inner policy that never acts never
// migrates anything.
func TestMigrateAtNoop(t *testing.T) {
	bp := &Breakpoint{FromTask: 0, Instr: 5, Pos: PosBefore, ToTask: 1}
	m := &MigrateAt{Inner: bp, Task: 1, ToCPU: 1} // task 1 already on CPU 1
	s := NewSession(m)
	s.Spawn(0, 0, func(h *Task) { h.Yield(5) })
	s.Spawn(1, 1, func(h *Task) { h.Yield(2) })
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	if m.Migrations != 0 {
		t.Fatalf("Migrations = %d, want 0 (already on destination CPU)", m.Migrations)
	}

	quiet := &MigrateAt{Inner: Sequential{}, Task: 0, ToCPU: 3}
	s2 := NewSession(quiet)
	s2.Spawn(0, 0, func(h *Task) { h.Yield(1); h.Yield(2) })
	if aborted := s2.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	if quiet.Migrations != 0 {
		t.Fatalf("Migrations = %d, want 0 (inner policy never acted)", quiet.Migrations)
	}
}

// TestSessionAccessor: Task.Session returns the owning session — the hook
// strategies use to spawn deferred-work tasks from inside a policy.
func TestSessionAccessor(t *testing.T) {
	s := NewSession(Sequential{})
	var got *Session
	s.Spawn(0, 0, func(h *Task) { got = h.Session() })
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	if got != s {
		t.Fatalf("Session() = %p, want %p", got, s)
	}
}

// TestCombinatorDispatchZeroAlloc pins the predicate-combinator dispatch
// path as allocation-free: once a guarded policy is constructed, consulting
// it at a scheduling point must not allocate — the fuzzer crosses this path
// on every yield of every MTI run.
func TestCombinatorDispatchZeroAlloc(t *testing.T) {
	bp := &Breakpoint{FromTask: 0, Instr: 1 << 30, Pos: PosBefore, ToTask: 1}
	g := &Guarded{Inner: bp, When: And(OnTask(0), Not(OnNthOccurrence(1<<30, 1)))}
	m := &MigrateAt{Inner: g, Task: 1, ToCPU: 0}
	s := NewSession(m)
	var allocs float64
	s.Spawn(0, 0, func(h *Task) {
		allocs = testing.AllocsPerRun(100, func() {
			m.OnYield(h, 7)
		})
	})
	s.Spawn(1, 1, func(h *Task) {})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	if allocs != 0 {
		t.Fatalf("combinator dispatch allocates %.1f times per yield, want 0", allocs)
	}
}

// BenchmarkCombinatorDispatch measures the guarded-policy consult on the
// no-switch fast path (the overwhelmingly common case in a campaign).
func BenchmarkCombinatorDispatch(b *testing.B) {
	bp := &Breakpoint{FromTask: 0, Instr: 1 << 30, Pos: PosBefore, ToTask: 1}
	g := &Guarded{Inner: bp, When: And(OnTask(0), Not(OnNthOccurrence(1<<30, 1)))}
	m := &MigrateAt{Inner: g, Task: 1, ToCPU: 0}
	s := NewSession(m)
	s.Spawn(0, 0, func(h *Task) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.OnYield(h, 7)
		}
	})
	s.Spawn(1, 1, func(h *Task) {})
	if aborted := s.Run(); aborted != nil {
		b.Fatalf("aborted: %v", aborted)
	}
}
