// Package sched implements the deterministic cooperative scheduler OZZ uses
// to control thread interleaving (§4.4.1, appendix §10.3). It plays the role
// of the paper's hypervisor-level custom scheduler: exactly one simulated
// vCPU runs at a time, scheduling points are instruction sites, and a
// breakpoint-style policy switches execution between tasks at a named
// instruction. Crucially — and unlike a real breakpoint — suspending a task
// does NOT flush its virtual store buffer, which is what lets OEMU keep
// memory-access reordering observable across an interleaving (§2.3).
//
// The scheduler is token-based: every task runs in its own goroutine but
// blocks until handed the run token, so all simulated-kernel state is only
// ever touched by one goroutine at a time. Given the same policy and task
// bodies, execution is fully deterministic.
package sched

import (
	"fmt"

	"ozz/internal/trace"
)

// spinLimit bounds how many times a blocked (spin-waiting) task is resumed
// without acquiring what it waits for before the session declares a
// deadlock/livelock.
const spinLimit = 2000

// State is a task's scheduling state.
type State uint8

const (
	// Runnable tasks can be scheduled.
	Runnable State = iota
	// Blocked tasks are spin-waiting on a resource; they are scheduled
	// only when no non-blocked task is runnable.
	Blocked
	// Done tasks have finished (returned or unwound after an abort).
	Done
)

// Deadlock is the error value a session aborts with when every live task is
// blocked, or a task exceeds the spin limit.
type Deadlock struct {
	Reason string
}

// Error implements error.
func (d *Deadlock) Error() string { return "deadlock: " + d.Reason }

// abortUnwind is panicked inside suspended tasks to unwind their goroutines
// once the session is aborting. It never escapes the package.
type abortUnwind struct{}

// Task is the scheduler-side handle of one simulated kernel task. Task
// bodies receive it and must call Yield at every instrumented operation.
type Task struct {
	ID  int
	CPU int

	state   State
	spin    int
	resume  chan struct{}
	session *Session

	// armed implements "switch after instruction X": when a breakpoint
	// with PosAfter matches, the policy arms the task and the switch
	// happens at its next yield.
	armedSwitch int // target task id, or -1
}

// Session runs one set of tasks to completion under a policy. A session is
// single-use; simulated-kernel state (memory, OEMU threads) persists outside
// it, so an executor runs multiple sessions in sequence over the same
// kernel (e.g. sequential prefix calls, then the concurrent pair).
type Session struct {
	policy Policy
	// seq and bp are the devirtualized fast paths for the two policies on
	// the execution hot path, resolved once at construction: Sequential
	// never switches (Yield returns immediately), and a *Breakpoint is
	// called through its concrete type. Every instrumented memory access
	// passes through Yield, so the per-access interface dispatch is worth
	// eliminating.
	seq bool
	bp  *Breakpoint

	tasks    []*Task
	byID     map[int]*Task
	bodies   map[int]func(*Task)
	order    []int // spawn order; default scheduling preference
	driverCh chan struct{}

	cur      *Task
	aborting bool
	// Aborted carries the recovered panic value (e.g. a *kernel.Crash)
	// that aborted the session, if any.
	Aborted any

	started  bool
	yields   uint64
	switches uint64
}

// Policy decides where interleavings happen.
type Policy interface {
	// First returns the id of the task to run first, given spawn order.
	First(order []int) int
	// OnYield is consulted at every scheduling point, before the
	// operation at instr executes. Returning (id, true) switches to task
	// id (if it is live); (0, false) continues the current task.
	OnYield(cur *Task, instr trace.InstrID) (int, bool)
}

// NewSession creates a session with the given policy.
func NewSession(policy Policy) *Session {
	s := &Session{
		policy:   policy,
		byID:     make(map[int]*Task),
		bodies:   make(map[int]func(*Task)),
		driverCh: make(chan struct{}),
	}
	switch p := policy.(type) {
	case Sequential:
		s.seq = true
	case *Breakpoint:
		s.bp = p
	}
	return s
}

// Spawn registers a task. Spawning is allowed both before Run and from a
// running task (fork); in the latter case the new task becomes runnable and
// is scheduled per policy.
func (s *Session) Spawn(id, cpu int, body func(*Task)) *Task {
	if _, dup := s.byID[id]; dup {
		panic(fmt.Sprintf("sched: duplicate task id %d", id))
	}
	t := &Task{ID: id, CPU: cpu, resume: make(chan struct{}), session: s, armedSwitch: -1}
	s.tasks = append(s.tasks, t)
	s.byID[id] = t
	s.bodies[id] = body
	s.order = append(s.order, id)
	if s.started {
		s.launch(t)
	}
	return t
}

func (s *Session) launch(t *Task) {
	body := s.bodies[t.ID]
	go func() {
		<-t.resume
		defer func() {
			if r := recover(); r != nil {
				if _, unwind := r.(abortUnwind); !unwind {
					// First real failure aborts the session.
					if s.Aborted == nil {
						s.Aborted = r
					}
					s.aborting = true
				}
			}
			t.state = Done
			s.next(t)
		}()
		if s.aborting {
			panic(abortUnwind{})
		}
		body(t)
	}()
}

// Run executes all spawned tasks to completion and returns the panic value
// that aborted the session, or nil on clean completion.
func (s *Session) Run() any {
	if s.started {
		panic("sched: session reused")
	}
	s.started = true
	if len(s.tasks) == 0 {
		return nil
	}
	for _, t := range s.tasks {
		s.launch(t)
	}
	first := s.byID[s.policy.First(s.order)]
	s.cur = first
	first.resume <- struct{}{}
	<-s.driverCh
	return s.Aborted
}

// Yields returns the number of scheduling points hit (diagnostics).
func (s *Session) Yields() uint64 { return s.yields }

// Switches returns the number of preemptions: scheduling points where the
// run token actually moved to a different task (a subset of Yields).
// Deterministic for a given (program, hint, seed).
func (s *Session) Switches() uint64 { return s.switches }

// handoff transfers the run token from the calling task to target and blocks
// the caller until rescheduled (or unwinds it if the session aborted).
func (s *Session) handoff(from, to *Task) {
	s.switches++
	s.cur = to
	to.resume <- struct{}{}
	<-from.resume
	if s.aborting {
		panic(abortUnwind{})
	}
}

// next is called when a task finishes: the token passes to the next live
// task, or back to the driver when none remain.
func (s *Session) next(done *Task) {
	if t := s.pick(); t != nil {
		s.cur = t
		t.resume <- struct{}{}
		return
	}
	s.driverCh <- struct{}{}
}

// pick returns the next task to resume: the first live non-blocked task in
// spawn order, else the first blocked one (spin retry), else nil.
func (s *Session) pick() *Task {
	var blocked *Task
	for _, id := range s.order {
		t := s.byID[id]
		switch t.state {
		case Runnable:
			return t
		case Blocked:
			if blocked == nil {
				blocked = t
			}
		}
	}
	return blocked
}

// live counts non-done tasks.
func (s *Session) live() int {
	n := 0
	for _, t := range s.tasks {
		if t.state != Done {
			n++
		}
	}
	return n
}

// Yield is the scheduling point, invoked before every instrumented
// operation. The policy may switch execution to another task here; a
// PosAfter breakpoint that matched at the previous yield also fires here.
func (t *Task) Yield(instr trace.InstrID) {
	s := t.session
	s.yields++
	if s.aborting {
		panic(abortUnwind{})
	}
	// Sequential sessions never switch and never arm: done.
	if s.seq && t.armedSwitch < 0 {
		return
	}
	// A pending "switch after previous instruction" fires first.
	if t.armedSwitch >= 0 {
		target := s.byID[t.armedSwitch]
		t.armedSwitch = -1
		if target != nil && target.state != Done && target != t {
			s.handoff(t, target)
			return
		}
	}
	var id int
	var doSwitch bool
	if s.bp != nil {
		id, doSwitch = s.bp.OnYield(t, instr)
	} else {
		id, doSwitch = s.policy.OnYield(t, instr)
	}
	if !doSwitch {
		return
	}
	target := s.byID[id]
	if target == nil || target.state == Done || target == t {
		return
	}
	s.handoff(t, target)
}

// ArmSwitchAfter schedules a switch to task id at this task's next yield
// (used by policies to implement "interleave right after instruction X").
func (t *Task) ArmSwitchAfter(id int) { t.armedSwitch = id }

// BlockSpin marks the task as spin-waiting and yields to another task. The
// caller retries its operation when resumed. Exceeding the spin limit, or
// having nobody else to run, aborts the session with a Deadlock.
func (t *Task) BlockSpin() {
	s := t.session
	if s.aborting {
		panic(abortUnwind{})
	}
	t.spin++
	if t.spin > spinLimit {
		s.Aborted = &Deadlock{Reason: fmt.Sprintf("task %d exceeded spin limit", t.ID)}
		s.aborting = true
		panic(abortUnwind{})
	}
	t.state = Blocked
	target := s.pickOther(t)
	if target == nil {
		// Everyone else is done and we cannot make progress.
		s.Aborted = &Deadlock{Reason: fmt.Sprintf("task %d blocked with no runnable peer", t.ID)}
		s.aborting = true
		panic(abortUnwind{})
	}
	s.handoff(t, target)
	t.state = Runnable
}

// ClearSpin resets the spin counter after successful progress (e.g. a lock
// was finally acquired).
func (t *Task) ClearSpin() { t.spin = 0 }

// Peers returns the number of live tasks other than t — callers that want
// to stall voluntarily (e.g. a watchpoint detector) check this first to
// avoid a vacuous deadlock.
func (t *Task) Peers() int {
	n := 0
	for _, o := range t.session.tasks {
		if o != t && o.state != Done {
			n++
		}
	}
	return n
}

// pickOther returns the preferred live task other than t: first non-blocked
// in spawn order, else first blocked.
func (s *Session) pickOther(t *Task) *Task {
	var blocked *Task
	for _, id := range s.order {
		o := s.byID[id]
		if o == t || o.state == Done {
			continue
		}
		if o.state == Runnable {
			return o
		}
		if blocked == nil {
			blocked = o
		}
	}
	return blocked
}

// Migrate moves the task to another simulated CPU. Migration does not flush
// any OEMU store buffer and does not interact with the scheduler beyond
// changing where per-CPU addresses resolve — exactly like a real kernel
// migration observed from the migrated task. The paper's OZZ pins its
// threads and cannot do this (§6.2, Table 4 #6); here the MigrateAt policy
// performs the move at scheduling points, which is what the engine's
// Migration strategy is built on.
func (t *Task) Migrate(cpu int) { t.CPU = cpu }
