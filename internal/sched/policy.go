package sched

import (
	"math/rand"

	"ozz/internal/trace"
)

// SwitchPos says whether a breakpoint switch happens before or after the
// matched instruction executes. The hypothetical store barrier test switches
// after the scheduling-point instruction (Fig. 5a: the post-barrier store
// commits, then the observer runs); the hypothetical load barrier test
// switches before it (Fig. 5b: the writer builds the store history before
// the reader's first group load executes).
type SwitchPos uint8

const (
	// PosBefore switches before the matched instruction executes.
	PosBefore SwitchPos = iota
	// PosAfter switches after the matched instruction executes.
	PosAfter
)

// Sequential runs tasks to completion in spawn order with no interleaving.
// It is the policy of OZZ's single-threaded profiling phase.
type Sequential struct{}

// First returns the first spawned task.
func (Sequential) First(order []int) int { return order[0] }

// OnYield never switches.
func (Sequential) OnYield(*Task, trace.InstrID) (int, bool) { return 0, false }

// Breakpoint is the SKI/Razzer-style policy: run FromTask until it reaches
// instruction Instr (its Occurrence-th execution, counting from 1), switch
// to ToTask, run it to completion, then resume FromTask (the scheduler's
// default pick order handles the resume). This is the scheduling-hint
// executor of §4.4.
type Breakpoint struct {
	FromTask   int
	Instr      trace.InstrID
	Occurrence int
	Pos        SwitchPos
	ToTask     int

	seen int
	// Fired reports whether the breakpoint matched during the run; the
	// fuzzer discards runs whose scheduling point was never reached.
	Fired bool
	// OnSwitch, when non-nil, runs once when the breakpoint fires, just
	// before control transfers — the hook the interrupt-injection
	// ablation uses to drain the suspended task's store buffer.
	OnSwitch func()
}

// First runs the task carrying the breakpoint first.
func (b *Breakpoint) First(order []int) int { return b.FromTask }

// OnYield implements the breakpoint match.
func (b *Breakpoint) OnYield(cur *Task, instr trace.InstrID) (int, bool) {
	if cur.ID != b.FromTask || instr != b.Instr || b.Fired {
		return 0, false
	}
	b.seen++
	occ := b.Occurrence
	if occ <= 0 {
		occ = 1
	}
	if b.seen != occ {
		return 0, false
	}
	b.Fired = true
	if b.OnSwitch != nil {
		b.OnSwitch()
	}
	if b.Pos == PosAfter {
		cur.ArmSwitchAfter(b.ToTask)
		return 0, false
	}
	return b.ToTask, true
}

// Random preempts at scheduling points with probability 1/Period, choosing
// uniformly among the other live tasks. It is the interleaving exploration
// of the in-order baseline fuzzer and of the KCSAN-style detector. With a
// fixed Seed the schedule is reproducible.
type Random struct {
	Seed   int64
	Period int

	rng *rand.Rand
}

// First runs the first spawned task.
func (r *Random) First(order []int) int { return order[0] }

// OnYield flips the seeded coin.
func (r *Random) OnYield(cur *Task, _ trace.InstrID) (int, bool) {
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.Seed))
	}
	period := r.Period
	if period <= 0 {
		period = 3
	}
	if r.rng.Intn(period) != 0 {
		return 0, false
	}
	s := cur.session
	var others []int
	for _, id := range s.order {
		t := s.byID[id]
		if t != cur && t.state != Done {
			others = append(others, id)
		}
	}
	if len(others) == 0 {
		return 0, false
	}
	return others[r.rng.Intn(len(others))], true
}
