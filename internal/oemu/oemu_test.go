package oemu

import (
	"testing"
	"testing/quick"

	"ozz/internal/kmem"
	"ozz/internal/trace"
)

// env builds an emulator over fresh memory with n threads.
func env(n int) (*OEMU, []*Thread, *kmem.Memory) {
	mem := kmem.New()
	mem.Sanitize = false // raw-address tests
	em := New(mem)
	ths := make([]*Thread, n)
	for i := range ths {
		ths[i] = em.NewThread(i)
	}
	return em, ths, mem
}

const (
	addrX trace.Addr = 0x1000_0000
	addrY trace.Addr = 0x1000_0008
	addrZ trace.Addr = 0x1000_0010
	addrW trace.Addr = 0x1000_0018
)

// TestInOrderByDefault: with no directives, stores commit immediately and
// loads read memory — OEMU is a no-op (§3.1 "Unless specifically
// instructed, the virtual store buffer commits values immediately").
func TestInOrderByDefault(t *testing.T) {
	_, ths, mem := env(2)
	a, b := ths[0], ths[1]
	a.Store(1, addrX, 1, trace.Plain)
	if got := mem.Read(addrX); got != 1 {
		t.Fatalf("store not committed: got %d", got)
	}
	if got := b.Load(2, addrX, trace.Plain); got != 1 {
		t.Fatalf("other thread sees %d, want 1", got)
	}
	if a.PendingStores() != 0 {
		t.Fatalf("unexpected pending stores: %d", a.PendingStores())
	}
}

// TestDelayedStoreFig3 reproduces Figure 3: delay_store_at(I1) holds X's
// value in the virtual store buffer while Y commits; smp_wmb() drains.
func TestDelayedStoreFig3(t *testing.T) {
	_, ths, mem := env(2)
	a := ths[0]
	a.Dir.DelayStoreAt(1)

	a.Store(1, addrX, 1, trace.Plain) // I1: delayed
	a.Store(2, addrY, 2, trace.Plain) // I2: commits immediately
	if got := mem.Read(addrX); got != 0 {
		t.Fatalf("delayed store leaked to memory: X=%d", got)
	}
	if got := mem.Read(addrY); got != 2 {
		t.Fatalf("undelayed store did not commit: Y=%d", got)
	}
	if v, ok := a.PendingAt(addrX); !ok || v != 1 {
		t.Fatalf("store buffer should hold X=1, got %d/%v", v, ok)
	}
	// Another thread observes I2 before I1 — the store-store reordering.
	b := ths[1]
	if b.Load(3, addrY, trace.Plain) != 2 || b.Load(4, addrX, trace.Plain) != 0 {
		t.Fatalf("observer did not see the reordering")
	}
	// The barrier commits the delayed store (Figure 3 step 5).
	a.Barrier(trace.BarrierStore)
	if got := mem.Read(addrX); got != 1 {
		t.Fatalf("smp_wmb did not flush: X=%d", got)
	}
}

// TestStoreForwarding: the delaying thread itself reads its own in-flight
// value (hierarchical search: store buffer first, §3.1).
func TestStoreForwarding(t *testing.T) {
	_, ths, _ := env(1)
	a := ths[0]
	a.Dir.DelayStoreAt(1)
	a.Store(1, addrX, 7, trace.Plain)
	if got := a.Load(2, addrX, trace.Plain); got != 7 {
		t.Fatalf("store-to-load forwarding failed: got %d", got)
	}
}

// TestCoalescingPreservesCoherence: two stores to the same location with
// the first delayed must not commit out of order (per-location coherence);
// the buffer coalesces and the final value wins.
func TestCoalescingPreservesCoherence(t *testing.T) {
	_, ths, mem := env(1)
	a := ths[0]
	a.Dir.DelayStoreAt(1)
	a.Store(1, addrX, 1, trace.Plain)
	a.Store(2, addrX, 2, trace.Plain) // same location: coalesces, not reordered
	if got := mem.Read(addrX); got != 0 {
		t.Fatalf("coalesced store leaked: X=%d", got)
	}
	a.Flush()
	if got := mem.Read(addrX); got != 2 {
		t.Fatalf("final value after flush: got %d, want 2", got)
	}
}

// TestInterruptFlushes: an interrupt drains the virtual store buffer
// (§3.1).
func TestInterruptFlushes(t *testing.T) {
	_, ths, mem := env(1)
	a := ths[0]
	a.Dir.DelayStoreAt(1)
	a.Store(1, addrX, 9, trace.Plain)
	a.Interrupt()
	if got := mem.Read(addrX); got != 9 {
		t.Fatalf("interrupt did not flush: X=%d", got)
	}
}

// TestVersionedLoadFig4 reproduces Figure 4: after smp_rmb() at t3, stores
// by another thread commit to W and Z; a versioned load on Z reads the old
// value (0) while the plain load on W reads the updated value.
func TestVersionedLoadFig4(t *testing.T) {
	_, ths, _ := env(2)
	a, b := ths[0], ths[1]
	// Pre-history: initial values.
	b.Store(10, addrW, 1, trace.Plain) // W=1 before the window
	a.Barrier(trace.BarrierLoad)       // t3: smp_rmb — window starts here
	b.Store(11, addrZ, 1, trace.Plain) // t4 (Z: 0 -> 1)
	b.Store(12, addrW, 2, trace.Plain) // t5 (W: 1 -> 2)

	a.Dir.ReadOldValueAt(2)
	r1 := a.Load(1, addrW, trace.Plain) // I1: default behaviour — updated value
	r2 := a.Load(2, addrZ, trace.Plain) // I2: versioned — old value
	if r1 != 2 {
		t.Errorf("I1 should read the updated W=2, got %d", r1)
	}
	if r2 != 0 {
		t.Errorf("I2 should read the old Z=0, got %d", r2)
	}
}

// TestVersioningWindowBound: a versioned load must not read values older
// than the last load barrier (§3.2 versioning window).
func TestVersioningWindowBound(t *testing.T) {
	_, ths, _ := env(2)
	a, b := ths[0], ths[1]
	b.Store(10, addrZ, 1, trace.Plain) // Z: 0 -> 1 (before the window)
	a.Barrier(trace.BarrierLoad)       // window starts: values before are invalid
	b.Store(11, addrZ, 2, trace.Plain) // Z: 1 -> 2 (inside the window)

	a.Dir.ReadOldValueAt(1)
	got := a.Load(1, addrZ, trace.Plain)
	if got != 1 {
		t.Fatalf("versioned load must read the window-start value 1, got %d", got)
	}
}

// TestVersionedLoadNoHistory: with no store in the window, the versioned
// load falls back to memory.
func TestVersionedLoadNoHistory(t *testing.T) {
	_, ths, _ := env(2)
	a, b := ths[0], ths[1]
	b.Store(10, addrZ, 5, trace.Plain)
	a.Barrier(trace.BarrierLoad) // window excludes the store above
	a.Dir.ReadOldValueAt(1)
	if got := a.Load(1, addrZ, trace.Plain); got != 5 {
		t.Fatalf("fallback to memory failed: got %d", got)
	}
}

// TestOwnCommitBoundsVersioning: a thread's versioned load never reads a
// value older than the thread's own committed store to that location
// (store-buffer-priority generalized; per-location coherence).
func TestOwnCommitBoundsVersioning(t *testing.T) {
	_, ths, _ := env(2)
	a, b := ths[0], ths[1]
	b.Store(10, addrZ, 1, trace.Plain)
	a.Store(11, addrZ, 2, trace.Plain) // own committed store
	b.Store(12, addrZ, 3, trace.Plain)
	a.Dir.ReadOldValueAt(1)
	// Window spans everything, but a's own commit (Z=2) floors it: a may
	// read 2 (the value its own store left) but never 1 or 0.
	got := a.Load(1, addrZ, trace.Plain)
	if got != 2 {
		t.Fatalf("versioned load read %d; must not precede own store (want 2)", got)
	}
}

// --- LKMM compliance (§3.3, §10.1) -----------------------------------------

// lkmmSetup: thread a delays X and versions loads; helpers run the MP
// (message-passing) shape with a given publisher barrier and check whether
// the stale observation is possible.
func mpPublishObserve(t *testing.T, barrier func(*Thread), wantStale bool) {
	t.Helper()
	_, ths, _ := env(2)
	w, r := ths[0], ths[1]
	w.Dir.DelayStoreAt(1)
	w.Store(1, addrX, 1, trace.Plain) // data
	barrier(w)                        // candidate ordering point
	w.Store(2, addrY, 1, trace.Plain) // flag
	flag := r.Load(3, addrY, trace.Plain)
	data := r.Load(4, addrX, trace.Plain)
	stale := flag == 1 && data == 0
	if stale != wantStale {
		t.Fatalf("stale observation=%v, want %v (flag=%d data=%d)", stale, wantStale, flag, data)
	}
}

// TestLKMMCase1FullBarrier: smp_mb() between two stores forbids the
// reordering.
func TestLKMMCase1FullBarrier(t *testing.T) {
	mpPublishObserve(t, func(w *Thread) { w.Barrier(trace.BarrierFull) }, false)
}

// TestLKMMCase2StoreBarrier: smp_wmb() between two stores forbids the
// reordering; no barrier allows it.
func TestLKMMCase2StoreBarrier(t *testing.T) {
	mpPublishObserve(t, func(w *Thread) { w.Barrier(trace.BarrierStore) }, false)
	mpPublishObserve(t, func(w *Thread) {}, true)
}

// TestLKMMCase3LoadBarrier: smp_rmb() between two loads forbids the second
// from reading a value older than the barrier point.
func TestLKMMCase3LoadBarrier(t *testing.T) {
	run := func(withRmb bool) (flag, data uint64) {
		_, ths, _ := env(2)
		w, r := ths[0], ths[1]
		// Writer commits data then flag, properly ordered.
		w.Store(1, addrX, 1, trace.Plain)
		w.Barrier(trace.BarrierStore)
		w.Store(2, addrY, 1, trace.Plain)
		r.Dir.ReadOldValueAt(4)
		flag = r.Load(3, addrY, trace.Plain)
		if withRmb {
			r.Barrier(trace.BarrierLoad)
		}
		data = r.Load(4, addrX, trace.Plain)
		return flag, data
	}
	if flag, data := run(false); flag != 1 || data != 0 {
		t.Fatalf("without rmb the stale read must occur (flag=%d data=%d)", flag, data)
	}
	if flag, data := run(true); flag != 1 || data != 1 {
		t.Fatalf("with rmb the stale read must not occur (flag=%d data=%d)", flag, data)
	}
}

// TestLKMMCase4Acquire: a load-acquire forbids subsequent loads from
// reading values older than the acquire point.
func TestLKMMCase4Acquire(t *testing.T) {
	_, ths, _ := env(2)
	w, r := ths[0], ths[1]
	w.Store(1, addrX, 1, trace.Plain)
	w.Barrier(trace.BarrierStore)
	w.Store(2, addrY, 1, trace.Plain)
	r.Dir.ReadOldValueAt(4)
	flag := r.Load(3, addrY, trace.AtomicAcquire) // smp_load_acquire
	data := r.Load(4, addrX, trace.Plain)
	if flag != 1 || data != 1 {
		t.Fatalf("acquire must forbid the stale read (flag=%d data=%d)", flag, data)
	}
}

// TestLKMMCase5Release: a store-release flushes all precedent delayed
// stores before committing.
func TestLKMMCase5Release(t *testing.T) {
	_, ths, mem := env(1)
	a := ths[0]
	a.Dir.DelayStoreAt(1)
	a.Store(1, addrX, 1, trace.Plain)
	a.Store(2, addrY, 1, trace.AtomicRelease) // smp_store_release
	if mem.Read(addrX) != 1 || mem.Read(addrY) != 1 {
		t.Fatalf("release must flush precedent stores (X=%d Y=%d)",
			mem.Read(addrX), mem.Read(addrY))
	}
}

// TestLKMMCase6ReadOnceActsAsLoadBarrier: an annotated (READ_ONCE/atomic)
// load acts as a load barrier for subsequent loads — the conservative rule
// OEMU adopts for dependency Case 6 (§3.2); unannotated loads still reorder
// regardless of dependencies (the Alpha rule).
func TestLKMMCase6ReadOnceActsAsLoadBarrier(t *testing.T) {
	run := func(atom trace.Atomicity) uint64 {
		_, ths, _ := env(2)
		w, r := ths[0], ths[1]
		w.Store(1, addrX, 1, trace.Plain)
		w.Barrier(trace.BarrierStore)
		w.Store(2, addrY, 1, trace.Plain)
		r.Dir.ReadOldValueAt(4)
		r.Load(3, addrY, atom)
		return r.Load(4, addrX, trace.Plain)
	}
	if got := run(trace.Plain); got != 0 {
		t.Fatalf("plain first load: stale read must be possible, got %d", got)
	}
	if got := run(trace.Once); got != 1 {
		t.Fatalf("READ_ONCE first load: stale read must be forbidden, got %d", got)
	}
	if got := run(trace.Atomic); got != 1 {
		t.Fatalf("atomic first load: stale read must be forbidden, got %d", got)
	}
}

// TestLKMMCase7NoLoadStoreReordering: loads always execute at their program
// point and stores only move later, so a load can never be reordered after
// a later store by construction (§3 scope; Case 7). We verify the visible
// consequence: a store following a load cannot commit values the load
// should have seen.
func TestLKMMCase7NoLoadStoreReordering(t *testing.T) {
	_, ths, _ := env(2)
	a, b := ths[0], ths[1]
	// a loads X then stores Y; the load must complete (read memory) at
	// its program point even under maximal directives.
	a.Dir.ReadOldValueAt(1)
	a.Dir.DelayStoreAt(2)
	got := a.Load(1, addrX, trace.Plain) // no history: reads memory now
	a.Store(2, addrY, got+1, trace.Plain)
	b.Store(3, addrX, 42, trace.Plain) // later store by another thread
	a.Flush()
	// If the load had moved after a.Flush (i.e. after b's store), Y would
	// be 43. It must be 1.
	if v := a.em.Mem.Read(addrY); v != 1 {
		t.Fatalf("load-store reordering emulated: Y=%d, want 1", v)
	}
}

// TestDelayedStoresFlushInOrder: the buffer drains in program order (a
// store buffer is FIFO per location set).
func TestDelayedStoresFlushInOrder(t *testing.T) {
	em, ths, _ := env(1)
	a := ths[0]
	a.Dir.DelayStoreAt(1)
	a.Dir.DelayStoreAt(2)
	a.Store(1, addrX, 1, trace.Plain)
	a.Store(2, addrY, 2, trace.Plain)
	a.Flush()
	// History order: X then Y.
	hx := &em.hist[em.addrIndex[addrX]]
	hy := &em.hist[em.addrIndex[addrY]]
	if hx.n != 1 || hy.n != 1 || !(hx.at(0).time < hy.at(0).time) {
		t.Fatalf("flush order violated: X@%d Y@%d", hx.at(0).time, hy.at(0).time)
	}
}

// TestReorderLog records what actually reordered, for bug reports.
func TestReorderLog(t *testing.T) {
	_, ths, _ := env(2)
	a, b := ths[0], ths[1]
	a.Dir.DelayStoreAt(1)
	a.Store(1, addrX, 1, trace.Plain)
	b.Store(9, addrZ, 1, trace.Plain)
	a.Dir.ReadOldValueAt(2)
	a.Load(2, addrZ, trace.Plain) // reads old 0? window floor 0, store at t2 -> old 0
	if a.ReorderedCount() != 2 {
		t.Fatalf("expected 2 reorder records, got %d (%v)", a.ReorderedCount(), a.Log)
	}
}

// TestPropertyCoherencePerLocation is a property test: for any sequence of
// stores by one thread to one location (with arbitrary delay directives and
// barriers), after a final flush the memory holds the LAST stored value —
// per-location program order is never violated.
func TestPropertyCoherencePerLocation(t *testing.T) {
	f := func(vals []uint64, delayMask uint8, barrierMask uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 8 {
			vals = vals[:8]
		}
		_, ths, mem := env(1)
		a := ths[0]
		for i := range vals {
			if delayMask&(1<<i) != 0 {
				a.Dir.DelayStoreAt(trace.InstrID(i + 1))
			}
		}
		for i, v := range vals {
			a.Store(trace.InstrID(i+1), addrX, v, trace.Plain)
			if barrierMask&(1<<i) != 0 {
				a.Barrier(trace.BarrierStore)
			}
		}
		a.Flush()
		return mem.Read(addrX) == vals[len(vals)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyObserverMonotonicAfterBarriers is a property test: when every
// store is separated by smp_wmb(), an observer can never see a later store
// without all earlier ones (no reordering is possible across barriers, no
// matter the directives).
func TestPropertyObserverMonotonicAfterBarriers(t *testing.T) {
	f := func(n uint8, delayMask uint8) bool {
		count := int(n%6) + 2
		_, ths, mem := env(2)
		w := ths[0]
		for i := 0; i < count; i++ {
			if delayMask&(1<<i) != 0 {
				w.Dir.DelayStoreAt(trace.InstrID(i + 1))
			}
		}
		for i := 0; i < count; i++ {
			w.Store(trace.InstrID(i+1), addrX+trace.Addr(i*8), 1, trace.Plain)
			w.Barrier(trace.BarrierStore)
		}
		// All stores must be committed: each was followed by a wmb.
		for i := 0; i < count; i++ {
			if mem.Read(addrX+trace.Addr(i*8)) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyVersionedLoadReturnsSomeHistoricValue: a versioned load
// always returns a value the location actually held at some point within
// the versioning window (never an invented value).
func TestPropertyVersionedLoadReturnsSomeHistoricValue(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) > 10 {
			vals = vals[:10]
		}
		_, ths, _ := env(2)
		w, r := ths[0], ths[1]
		valid := map[uint64]bool{0: true} // initial value
		for i, v := range vals {
			w.Store(trace.InstrID(i+1), addrX, v, trace.Plain)
			valid[v] = true
		}
		r.Dir.ReadOldValueAt(99)
		got := r.Load(99, addrX, trace.Plain)
		return valid[got]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCoRRCoherence: per-location read-read coherence — once a thread has
// observed a value, a later (even versioned) load of the SAME location may
// never return an older version. All architectures, Alpha included,
// preserve po-loc coherence.
func TestCoRRCoherence(t *testing.T) {
	_, ths, _ := env(2)
	w, r := ths[0], ths[1]
	w.Store(1, addrX, 1, trace.Plain)
	w.Store(2, addrX, 2, trace.Plain)
	r.Dir.ReadOldValueAt(4)
	first := r.Load(3, addrX, trace.Plain) // reads 2 (memory)
	second := r.Load(4, addrX, trace.Plain)
	if first != 2 || second != 2 {
		t.Fatalf("CoRR violated: first=%d second=%d (second must not be older)", first, second)
	}
}

// TestCoRRAfterVersionedRead: the floor also holds between two versioned
// loads — versions may only move forward.
func TestCoRRAfterVersionedRead(t *testing.T) {
	_, ths, _ := env(2)
	w, r := ths[0], ths[1]
	w.Store(1, addrX, 1, trace.Plain) // t1: 0 -> 1
	w.Store(2, addrX, 2, trace.Plain) // t2: 1 -> 2
	w.Store(3, addrX, 3, trace.Plain) // t3: 2 -> 3
	r.Dir.ReadOldValueAt(4)
	r.Dir.ReadOldValueAt(5)
	v1 := r.Load(4, addrX, trace.Plain) // oldest in window: 0
	v2 := r.Load(5, addrX, trace.Plain) // must be >= v1's version: 0 again? No:
	// v1 observed version time 0 (initial); a second versioned load may
	// observe the same or a newer version, never an older one.
	if v1 != 0 {
		t.Fatalf("first versioned load: got %d, want 0", v1)
	}
	if v2 == 3 || v2 == 0 {
		// Reading the same version (0) again or any newer one is
		// acceptable; just assert it is a real historic value.
	}
	valid := map[uint64]bool{0: true, 1: true, 2: true, 3: true}
	if !valid[v2] {
		t.Fatalf("second versioned load returned invented value %d", v2)
	}
}

// TestHistoryEviction: the per-location store history is bounded; evicting
// old entries only narrows what versioned loads can observe (conservative),
// never invents values.
func TestHistoryEviction(t *testing.T) {
	_, ths, _ := env(2)
	w, r := ths[0], ths[1]
	const writes = historyCapPerAddr + 50
	for i := 1; i <= writes; i++ {
		w.Store(1, addrX, uint64(i), trace.Plain)
	}
	r.Dir.ReadOldValueAt(2)
	got := r.Load(2, addrX, trace.Plain)
	// The oldest reachable version is bounded by the cap: values below
	// writes-historyCapPerAddr were evicted.
	if got < uint64(writes-historyCapPerAddr) || got > uint64(writes) {
		t.Fatalf("versioned load returned %d, outside the retained window", got)
	}
}

// TestPerThreadBuffersIndependent: one thread's delayed stores never leak
// into another thread's buffer or forwarding path.
func TestPerThreadBuffersIndependent(t *testing.T) {
	_, ths, _ := env(2)
	a, b := ths[0], ths[1]
	a.Dir.DelayStoreAt(1)
	a.Store(1, addrX, 7, trace.Plain)
	if b.PendingStores() != 0 {
		t.Fatal("buffer leaked across threads")
	}
	if got := b.Load(2, addrX, trace.Plain); got != 0 {
		t.Fatalf("forwarding leaked across threads: %d", got)
	}
	b.Flush() // no-op
	if got := b.Load(3, addrX, trace.Plain); got != 0 {
		t.Fatalf("foreign flush committed the delayed store: %d", got)
	}
}
