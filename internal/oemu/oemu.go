// Package oemu implements OEMU, the in-vivo out-of-order execution emulator
// of the paper (§3). It reorders memory accesses of the simulated kernel
// explicitly and deterministically using two mechanisms:
//
//   - Delayed store operations (§3.1): a per-thread virtual store buffer
//     holds the value of a store back from memory until a store/full/release
//     barrier or an interrupt, emulating store-store and store-load
//     reordering. Loads by the same thread are forwarded from the buffer.
//
//   - Versioned load operations (§3.2): a global store history records how
//     each location's value changed over time; a per-thread versioning
//     window (t_rmb, t_cur] bounds how stale a value a versioned load may
//     observe, emulating load-load reordering.
//
// A userspace program (the fuzzer) selects which instruction sites reorder
// through the two directives of Table 2: DelayStoreAt and ReadOldValueAt.
// Absent directives, OEMU executes in order. Reordering complies with the
// Linux Kernel Memory Model's seven preserved-program-order cases (§3.3,
// §10.1); see the package tests and internal/lkmm for the compliance suite.
package oemu

import (
	"fmt"

	"ozz/internal/kmem"
	"ozz/internal/trace"
)

// historyCapPerAddr bounds the per-location store history. Entries beyond
// the cap are evicted oldest-first; evicting limits how far back a versioned
// load can reach, which only makes emulation more conservative.
const historyCapPerAddr = 128

// Directives is the per-thread reordering plan, set through the Table 2
// interfaces before a test run. Instruction sites appearing in DelayStore
// have their store operations delayed in the virtual store buffer; sites in
// ReadOld have their load operations read an old value from the store
// history (subject to the versioning window).
type Directives struct {
	DelayStore map[trace.InstrID]bool
	ReadOld    map[trace.InstrID]bool
}

// NewDirectives returns an empty plan (in-order execution).
func NewDirectives() Directives {
	return Directives{
		DelayStore: make(map[trace.InstrID]bool),
		ReadOld:    make(map[trace.InstrID]bool),
	}
}

// DelayStoreAt requests that stores executed by instruction site i be
// delayed (Table 2: delay_store_at).
func (d *Directives) DelayStoreAt(i trace.InstrID) { d.DelayStore[i] = true }

// ReadOldValueAt requests that loads executed by instruction site i read an
// old value (Table 2: read_old_value_at).
func (d *Directives) ReadOldValueAt(i trace.InstrID) { d.ReadOld[i] = true }

// Empty reports whether the plan requests no reordering.
func (d *Directives) Empty() bool { return len(d.DelayStore) == 0 && len(d.ReadOld) == 0 }

// histEntry records one committed store: the location, the value it
// overwrote, the value it wrote, the commit timestamp, and the committing
// thread.
type histEntry struct {
	old, new uint64
	time     uint64
	thread   int
}

// pendingStore is one in-flight entry of a virtual store buffer.
type pendingStore struct {
	addr  trace.Addr
	val   uint64
	instr trace.InstrID
}

// ReorderKind classifies an observed reordering for reports.
type ReorderKind uint8

const (
	// ReorderDelayedStore: a store was held in the virtual store buffer.
	ReorderDelayedStore ReorderKind = iota
	// ReorderVersionedLoad: a load read an old value from the history.
	ReorderVersionedLoad
	// ReorderForwarded: a load was forwarded from the local store buffer
	// (not a reordering per se, but part of the emulation trace).
	ReorderForwarded
)

// String names the reorder kind.
func (k ReorderKind) String() string {
	switch k {
	case ReorderDelayedStore:
		return "delayed-store"
	case ReorderVersionedLoad:
		return "versioned-load"
	case ReorderForwarded:
		return "store-forward"
	}
	return fmt.Sprintf("reorder(%d)", uint8(k))
}

// ReorderRecord logs one reordering event that actually happened at runtime.
// The fuzzer attaches these to bug reports so developers can see the exact
// out-of-order execution that triggered the bug (§4.4).
type ReorderRecord struct {
	Kind  ReorderKind
	Instr trace.InstrID
	Addr  trace.Addr
	Val   uint64 // the stale/held value involved
}

// String renders the record for reports.
func (r ReorderRecord) String() string {
	return fmt.Sprintf("%s instr=%d addr=0x%x val=0x%x", r.Kind, r.Instr, uint64(r.Addr), r.Val)
}

// Thread is the per-thread OEMU state: the virtual store buffer, the
// versioning window, the directives, and the reorder log.
type Thread struct {
	ID  int
	Dir Directives

	sb      []pendingStore
	sbIndex map[trace.Addr]int // addr -> index into sb

	// tRmb is the start of the versioning window: the logical time of the
	// most recent load/full/acquire barrier (or annotated load) executed
	// by this thread. Versioned loads may only observe values the
	// location held after tRmb.
	tRmb uint64

	// lastCommit records, per address, the time of this thread's own most
	// recent committed store. A versioned load must never observe a value
	// older than the thread's own committed store to the same location
	// (per-location coherence; the store-buffer priority rule of §3.2
	// generalized to already-committed stores).
	lastCommit map[trace.Addr]uint64

	// seen records, per address, the version time of the value this
	// thread most recently READ from the location. Per-location read-read
	// coherence (CoRR — preserved even on Alpha) forbids a later load of
	// the same location from observing an older version, so versioned
	// loads floor their window at it.
	seen map[trace.Addr]uint64

	// Log accumulates reorderings that actually occurred.
	Log []ReorderRecord

	em *OEMU
}

// Counters is the per-execution OEMU activity tally (§3 mechanisms made
// visible). Fields are plain uint64s — OEMU is driven by exactly one
// running thread at a time, so no atomics are needed — and they are
// deterministic for a given (program, hint, seed): the same run always
// produces the same counts. The engine harvests them into the campaign
// metrics registry after each execution.
type Counters struct {
	// StoresDelayed counts stores held in a virtual store buffer (§3.1).
	StoresDelayed uint64
	// ForwardedLoads counts loads satisfied by store-to-load forwarding
	// from the local buffer.
	ForwardedLoads uint64
	// VersionedLoads counts loads that observed an old value from the
	// store history (§3.2).
	VersionedLoads uint64
	// StoresCommitted counts stores written through to memory (including
	// delayed stores at their eventual flush).
	StoresCommitted uint64
	// FlushSmpWmb counts store-buffer drains caused by a store barrier
	// (smp_wmb). Only non-empty drains are counted, for every Flush* field.
	FlushSmpWmb uint64
	// FlushSmpMb counts drains caused by a full barrier (smp_mb).
	FlushSmpMb uint64
	// FlushRelease counts drains caused by release semantics
	// (smp_store_release, clear_bit_unlock, or a release barrier).
	FlushRelease uint64
	// FlushInterrupt counts drains caused by an interrupt (§3.1).
	FlushInterrupt uint64
	// FlushSyscall counts drains at syscall exit (the in-vivo boundary
	// past which a real store buffer cannot hold a store).
	FlushSyscall uint64
	// LoadWindowAdvances counts versioning-window starts moving forward
	// (load/full/acquire barriers and annotated loads, when the clock has
	// advanced since the last window start).
	LoadWindowAdvances uint64
}

// OEMU is the emulator instance shared by all threads of one simulated
// kernel: the global logical clock, the store history, and the backing
// memory. It is driven by exactly one running thread at a time (the
// deterministic scheduler guarantees this), so it needs no locking.
type OEMU struct {
	Mem   *kmem.Memory
	clock uint64

	history map[trace.Addr][]histEntry

	threads []*Thread
	// free holds retired Thread structs (with their maps) for reuse by
	// NewThread after a Reset, cutting per-execution allocation churn.
	free []*Thread

	// n tallies emulation activity since the last Reset.
	n Counters
}

// Counters returns the activity tally accumulated since the last Reset.
func (em *OEMU) Counters() Counters { return em.n }

// New returns an emulator over the given memory.
func New(mem *kmem.Memory) *OEMU {
	return &OEMU{
		Mem:     mem,
		history: make(map[trace.Addr][]histEntry),
	}
}

// NewThread registers a new emulated hardware thread, reusing a retired
// Thread (and its map storage) when one is available.
func (em *OEMU) NewThread(id int) *Thread {
	if n := len(em.free); n > 0 {
		t := em.free[n-1]
		em.free[n-1] = nil
		em.free = em.free[:n-1]
		t.ID = id
		em.threads = append(em.threads, t)
		return t
	}
	t := &Thread{
		ID:         id,
		Dir:        NewDirectives(),
		sbIndex:    make(map[trace.Addr]int),
		lastCommit: make(map[trace.Addr]uint64),
		seen:       make(map[trace.Addr]uint64),
		em:         em,
	}
	em.threads = append(em.threads, t)
	return t
}

// Reset returns the emulator to its freshly-constructed state — clock at
// zero, empty store history, no registered threads — while retiring the
// current Thread structs into a freelist for reuse. A reset OEMU behaves
// identically to New over a reset Memory.
func (em *OEMU) Reset() {
	em.clock = 0
	em.n = Counters{}
	clear(em.history)
	for _, t := range em.threads {
		t.reset()
		em.free = append(em.free, t)
	}
	em.threads = em.threads[:0]
}

// reset clears all per-thread emulation state while keeping map/slice
// storage for reuse.
func (t *Thread) reset() {
	clear(t.Dir.DelayStore)
	clear(t.Dir.ReadOld)
	t.sb = t.sb[:0]
	clear(t.sbIndex)
	t.tRmb = 0
	clear(t.lastCommit)
	clear(t.seen)
	t.Log = nil // logs may be retained by reports; do not reuse the array
}

// Now returns the current logical time. The clock advances on every commit.
func (em *OEMU) Now() uint64 { return em.clock }

// commit writes a value to memory, advances the clock, and records the
// transition in the store history.
func (em *OEMU) commit(t *Thread, addr trace.Addr, val uint64) {
	old := em.Mem.Read(addr)
	em.Mem.Write(addr, val)
	em.clock++
	h := em.history[addr]
	h = append(h, histEntry{old: old, new: val, time: em.clock, thread: t.ID})
	if len(h) > historyCapPerAddr {
		h = h[len(h)-historyCapPerAddr:]
	}
	em.history[addr] = h
	t.lastCommit[addr] = em.clock
	em.n.StoresCommitted++
}

// oldValue returns the value location addr held at the start of the window
// (after, i.e. strictly newer than, logical time floor) together with that
// value's version time (the commit time of the store that wrote it, 0 for
// the initial value), or ok=false when no store to addr committed after
// floor — in which case the current memory value is already the
// window-start value.
func (em *OEMU) oldValue(addr trace.Addr, floor uint64) (val, versionTime uint64, ok bool) {
	var prevTime uint64
	for _, e := range em.history[addr] {
		if e.time > floor {
			return e.old, prevTime, true
		}
		prevTime = e.time
	}
	return 0, 0, false
}

// latestTime returns the commit time of the newest store to addr (0 if the
// location was never stored to through OEMU).
func (em *OEMU) latestTime(addr trace.Addr) uint64 {
	h := em.history[addr]
	if len(h) == 0 {
		return 0
	}
	return h[len(h)-1].time
}

// Store executes a store operation at instruction site instr. Release
// semantics flush the store buffer first (LKMM Case 5). If the site is
// directed to delay — and no barrier forbids it — the value is held in the
// virtual store buffer instead of being committed (§3.1).
func (t *Thread) Store(instr trace.InstrID, addr trace.Addr, val uint64, atom trace.Atomicity) {
	em := t.em
	if atom.IsRelease() {
		// smp_store_release / clear_bit_unlock: all precedent accesses
		// complete before this store (flush acts as smp_wmb; precedent
		// loads already executed in place as OEMU never delays loads).
		t.flush(&em.n.FlushRelease)
	}
	if idx, ok := t.sbIndex[addr]; ok {
		// A delayed store to this location is already in flight.
		// Coalesce: overwrite its value in place, preserving
		// per-location program order (coherence). The intermediate
		// value never becomes visible, which a real store buffer also
		// permits.
		t.sb[idx].val = val
		t.sb[idx].instr = instr
		return
	}
	if t.Dir.DelayStore[instr] && !atom.IsRelease() {
		t.sb = append(t.sb, pendingStore{addr: addr, val: val, instr: instr})
		t.sbIndex[addr] = len(t.sb) - 1
		t.Log = append(t.Log, ReorderRecord{Kind: ReorderDelayedStore, Instr: instr, Addr: addr, Val: val})
		em.n.StoresDelayed++
		return
	}
	em.commit(t, addr, val)
}

// Load executes a load operation at instruction site instr and returns the
// value observed. Resolution order (§3.1/§3.2): local store buffer
// (store-to-load forwarding) first, then — if directed — an old value from
// the store history bounded by the versioning window, then memory.
//
// After the load, annotated loads (READ_ONCE, atomics, acquire) advance the
// versioning window: the LKMM treats them as a load barrier for subsequent
// loads (Cases 4 and 6; §3.2 "Dependencies from a load operation").
func (t *Thread) Load(instr trace.InstrID, addr trace.Addr, atom trace.Atomicity) uint64 {
	em := t.em
	var val uint64
	switch {
	case t.forwarded(addr):
		val = t.sb[t.sbIndex[addr]].val
		t.Log = append(t.Log, ReorderRecord{Kind: ReorderForwarded, Instr: instr, Addr: addr, Val: val})
		em.n.ForwardedLoads++
	case t.Dir.ReadOld[instr]:
		// The versioning window floor: the last load barrier, but never
		// older than the thread's own committed store to the location,
		// nor than the version it has already observed there (CoRR:
		// per-location read-read coherence holds on every architecture,
		// Alpha included).
		floor := t.tRmb
		if lc := t.lastCommit[addr]; lc > floor {
			floor = lc
		}
		if sv := t.seen[addr]; sv > floor {
			floor = sv
		}
		if old, vt, ok := em.oldValue(addr, floor); ok {
			val = old
			t.seen[addr] = vt
			t.Log = append(t.Log, ReorderRecord{Kind: ReorderVersionedLoad, Instr: instr, Addr: addr, Val: val})
			em.n.VersionedLoads++
		} else {
			val = em.Mem.Read(addr)
			t.seen[addr] = em.latestTime(addr)
		}
	default:
		val = em.Mem.Read(addr)
		t.seen[addr] = em.latestTime(addr)
	}
	if atom.ActsAsLoadBarrier() {
		// READ_ONCE / atomic / acquire load: subsequent loads must not
		// observe values older than this point (LKMM Cases 4 and 6).
		t.advanceWindow()
	}
	return val
}

// advanceWindow moves the versioning-window start to now, counting the
// advance when the window actually moves.
func (t *Thread) advanceWindow() {
	if t.em.clock > t.tRmb {
		t.em.n.LoadWindowAdvances++
	}
	t.tRmb = t.em.clock
}

// Barrier executes a memory barrier (Table 1). Store-ordering barriers flush
// the virtual store buffer (no store may be delayed across them); load-
// ordering barriers advance the versioning window (no later load may read a
// value older than the barrier point).
func (t *Thread) Barrier(kind trace.BarrierKind) {
	if kind.OrdersStores() {
		t.flush(t.flushCauseCounter(kind))
	}
	if kind.OrdersLoads() {
		t.advanceWindow()
	}
}

// flushCauseCounter maps a store-ordering barrier kind to the Counters
// field that tallies the drain it causes.
func (t *Thread) flushCauseCounter(kind trace.BarrierKind) *uint64 {
	n := &t.em.n
	switch kind {
	case trace.BarrierStore:
		return &n.FlushSmpWmb
	case trace.BarrierRelease:
		return &n.FlushRelease
	default: // full barrier (smp_mb) and anything else that orders stores
		return &n.FlushSmpMb
	}
}

// Interrupt models an interrupt on the processor running this thread, which
// drains the virtual store buffer (§3.1).
func (t *Thread) Interrupt() { t.flush(&t.em.n.FlushInterrupt) }

// FlushAtSyscallExit drains the virtual store buffer at the syscall
// boundary (§3.1: a real store buffer cannot hold a store past the return
// to userspace), attributing the drain to the syscall-exit cause.
func (t *Thread) FlushAtSyscallExit() { t.flush(&t.em.n.FlushSyscall) }

// flush drains the store buffer, incrementing cause only when the drain
// actually committed something (an empty flush is not an event).
func (t *Thread) flush(cause *uint64) {
	if len(t.sb) > 0 {
		*cause++
	}
	t.Flush()
}

// Flush commits all delayed stores, in their original program order.
func (t *Thread) Flush() {
	for _, p := range t.sb {
		t.em.commit(t, p.addr, p.val)
	}
	t.sb = t.sb[:0]
	for a := range t.sbIndex {
		delete(t.sbIndex, a)
	}
}

// PendingStores returns the number of in-flight delayed stores.
func (t *Thread) PendingStores() int { return len(t.sb) }

// PendingAt reports whether a delayed store to addr is in flight and, if so,
// its held value.
func (t *Thread) PendingAt(addr trace.Addr) (uint64, bool) {
	if idx, ok := t.sbIndex[addr]; ok {
		return t.sb[idx].val, true
	}
	return 0, false
}

// WindowStart returns the current versioning-window start t_rmb.
func (t *Thread) WindowStart() uint64 { return t.tRmb }

func (t *Thread) forwarded(addr trace.Addr) bool {
	_, ok := t.sbIndex[addr]
	return ok
}

// ResetDirectives clears the reordering plan and the log, keeping buffered
// state (used between system calls of one input).
func (t *Thread) ResetDirectives() {
	t.Dir = NewDirectives()
	t.Log = t.Log[:0]
}

// ReorderedCount returns how many genuine reorderings (delayed stores or
// versioned loads, excluding forwards) occurred — the fuzzer uses this to
// confirm a scheduling hint actually fired.
func (t *Thread) ReorderedCount() int {
	n := 0
	for _, r := range t.Log {
		if r.Kind != ReorderForwarded {
			n++
		}
	}
	return n
}
