// Package oemu implements OEMU, the in-vivo out-of-order execution emulator
// of the paper (§3). It reorders memory accesses of the simulated kernel
// explicitly and deterministically using two mechanisms:
//
//   - Delayed store operations (§3.1): a per-thread virtual store buffer
//     holds the value of a store back from memory until a store/full/release
//     barrier or an interrupt, emulating store-store and store-load
//     reordering. Loads by the same thread are forwarded from the buffer.
//
//   - Versioned load operations (§3.2): a global store history records how
//     each location's value changed over time; a per-thread versioning
//     window (t_rmb, t_cur] bounds how stale a value a versioned load may
//     observe, emulating load-load reordering.
//
// A userspace program (the fuzzer) selects which instruction sites reorder
// through the two directives of Table 2: DelayStoreAt and ReadOldValueAt.
// Absent directives, OEMU executes in order. Reordering complies with the
// Linux Kernel Memory Model's seven preserved-program-order cases (§3.3,
// §10.1); see the package tests and internal/lkmm for the compliance suite.
//
// The per-address bookkeeping (store history, per-thread coherence stamps)
// is arena-based: addresses are interned into dense indices, history lives
// in fixed-capacity rings recycled across Reset, and per-thread stamps are
// dense slices cleared in place — so a recycled emulator executes a
// no-directive run without allocating.
package oemu

import (
	"fmt"

	"ozz/internal/kmem"
	"ozz/internal/memmodel"
	"ozz/internal/trace"
)

// historyCapPerAddr bounds the per-location store history. Entries beyond
// the cap are evicted oldest-first; evicting limits how far back a versioned
// load can reach, which only makes emulation more conservative. Must be a
// power of two: the ring index math masks with historyCapPerAddr-1.
const historyCapPerAddr = 128

// internCap bounds the persistent address-intern table. Interned addresses
// recur across recycled runs (the simulated allocator hands out the same
// address ranges after every Reset), so the table normally stabilizes at
// the campaign's working-set size; the cap is a backstop against unbounded
// growth under adversarial address churn.
const internCap = 1 << 14

// Directives is the per-thread reordering plan, set through the Table 2
// interfaces before a test run. Instruction sites added via DelayStoreAt
// have their store operations delayed in the virtual store buffer; sites
// added via ReadOldValueAt have their load operations read an old value
// from the store history (subject to the versioning window).
//
// Ownership: a Directives value is owned by its Thread (or, for standalone
// use, by the single caller that built it with NewDirectives). The site
// sets are sorted slices mutated through the pointer-receiver methods;
// copying the struct by value shares the underlying arrays and must not be
// combined with further mutation — use the owning Thread's Dir field (which
// is addressable) or a *Directives, never a copy. Precompiled plans attach
// by reference (InstallPlan) and are never mutated.
type Directives struct {
	// plan is an immutable precompiled site set, shared across runs.
	plan *Plan
	// delayStore/readOld are the incrementally-added site sets, sorted
	// ascending, deduplicated.
	delayStore []trace.InstrID
	readOld    []trace.InstrID

	// em, when the Directives belong to a Thread, lets ReadOldValueAt arm
	// store-history tracking on the owning emulator (nil for standalone
	// plans, whose emulator tracks history by default).
	em *OEMU
}

// NewDirectives returns an empty plan (in-order execution).
func NewDirectives() Directives { return Directives{} }

// insertSorted adds i to the sorted set s if absent.
func insertSorted(s []trace.InstrID, i trace.InstrID) []trace.InstrID {
	lo := 0
	for lo < len(s) && s[lo] < i {
		lo++
	}
	if lo < len(s) && s[lo] == i {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = i
	return s
}

// containsSorted reports membership in a sorted site set. The sets are tiny
// (one to a handful of sites), so a linear scan beats hashing.
func containsSorted(s []trace.InstrID, i trace.InstrID) bool {
	for _, v := range s {
		if v >= i {
			return v == i
		}
	}
	return false
}

// DelayStoreAt requests that stores executed by instruction site i be
// delayed (Table 2: delay_store_at).
func (d *Directives) DelayStoreAt(i trace.InstrID) {
	d.delayStore = insertSorted(d.delayStore, i)
}

// ReadOldValueAt requests that loads executed by instruction site i read an
// old value (Table 2: read_old_value_at). On a Thread whose emulator has
// store-history tracking disabled, this re-enables it conservatively: the
// history is recorded from this point on, and versioned loads cannot reach
// past it.
func (d *Directives) ReadOldValueAt(i trace.InstrID) {
	d.readOld = insertSorted(d.readOld, i)
	if d.em != nil && d.em.mm.AnyVersionable() {
		d.em.armHistory()
	}
}

// hasDelay reports whether stores at site i are directed to delay.
func (d *Directives) hasDelay(i trace.InstrID) bool {
	if d.plan != nil && containsSorted(d.plan.delayStore, i) {
		return true
	}
	return containsSorted(d.delayStore, i)
}

// hasReadOld reports whether loads at site i are directed to version.
func (d *Directives) hasReadOld(i trace.InstrID) bool {
	if d.plan != nil && containsSorted(d.plan.readOld, i) {
		return true
	}
	return containsSorted(d.readOld, i)
}

// Empty reports whether the plan requests no reordering.
func (d *Directives) Empty() bool {
	return (d.plan == nil || d.plan.Empty()) && len(d.delayStore) == 0 && len(d.readOld) == 0
}

// reset clears the directive sets in place, dropping any installed plan.
func (d *Directives) reset() {
	d.plan = nil
	d.delayStore = d.delayStore[:0]
	d.readOld = d.readOld[:0]
}

// Plan is an immutable, precompiled reordering plan: the two Table 2 site
// sets in canonical (sorted, deduplicated) form. A Plan is compiled once
// per distinct directive set, cached by the caller, and shared by reference
// across any number of threads and runs — it is never mutated after
// CompilePlan returns.
type Plan struct {
	delayStore []trace.InstrID
	readOld    []trace.InstrID
}

// CompilePlan canonicalizes the given site sets into an immutable Plan.
// The inputs are copied; the caller keeps ownership of its slices.
func CompilePlan(delayStore, readOld []trace.InstrID) *Plan {
	return CompilePlanModel(delayStore, readOld, memmodel.LKMM)
}

// CompilePlanModel canonicalizes the site sets into an immutable Plan for
// one memory model, dropping sites the model makes inert: versioned-load
// sites under a model with no versionable loads (no invalidation-queue
// effects, e.g. TSO), and delayed-store sites under a model with no
// delayable stores. Dropping them at compile time keeps the plan's
// HasReads/Empty answers — and therefore history-tracking arming and
// in-order fast paths — accurate per model. Plans are model-specific; the
// plan cache must key on the model name.
func CompilePlanModel(delayStore, readOld []trace.InstrID, mm *memmodel.Table) *Plan {
	p := &Plan{}
	if mm.AnyDelayable() {
		for _, s := range delayStore {
			p.delayStore = insertSorted(p.delayStore, s)
		}
	}
	if mm.AnyVersionable() {
		for _, s := range readOld {
			p.readOld = insertSorted(p.readOld, s)
		}
	}
	return p
}

// DelaySites returns the canonical delayed-store site set (read-only).
func (p *Plan) DelaySites() []trace.InstrID { return p.delayStore }

// ReadSites returns the canonical versioned-load site set (read-only).
func (p *Plan) ReadSites() []trace.InstrID { return p.readOld }

// Empty reports whether the plan requests no reordering.
func (p *Plan) Empty() bool { return len(p.delayStore) == 0 && len(p.readOld) == 0 }

// HasReads reports whether the plan contains versioned-load directives
// (which require store-history tracking).
func (p *Plan) HasReads() bool { return len(p.readOld) > 0 }

// InstallPlan attaches a precompiled plan to the thread's directives by
// reference (no copying; the plan stays immutable and shared). Installing a
// plan with versioned-load sites arms store-history tracking, exactly like
// calling ReadOldValueAt for each site.
func (t *Thread) InstallPlan(p *Plan) {
	t.Dir.plan = p
	if p != nil && p.HasReads() && t.em.mm.AnyVersionable() {
		t.em.armHistory()
	}
}

// histEntry records one committed store: the value it overwrote, the value
// it wrote, the commit timestamp, and the committing thread.
type histEntry struct {
	old, new uint64
	time     uint64
	thread   int
}

// histRing is the per-location store history: a fixed-capacity ring of the
// most recent historyCapPerAddr commits, overwritten oldest-first in place.
// The entry array is allocated on a location's first commit and retained
// across Reset, so recycled runs record history without allocating.
type histRing struct {
	entries []histEntry // nil until first commit; len == historyCapPerAddr
	start   int32       // index of the oldest entry
	n       int32
}

// push appends a commit, evicting the oldest entry once full.
func (r *histRing) push(e histEntry) {
	if int(r.n) < historyCapPerAddr {
		r.entries[(int(r.start)+int(r.n))&(historyCapPerAddr-1)] = e
		r.n++
		return
	}
	r.entries[r.start] = e
	r.start = (r.start + 1) & (historyCapPerAddr - 1)
}

// at returns the k-th entry, oldest first (0 <= k < n).
func (r *histRing) at(k int) histEntry {
	return r.entries[(int(r.start)+k)&(historyCapPerAddr-1)]
}

// pendingStore is one in-flight entry of a virtual store buffer.
type pendingStore struct {
	addr  trace.Addr
	val   uint64
	instr trace.InstrID
}

// ReorderKind classifies an observed reordering for reports.
type ReorderKind uint8

const (
	// ReorderDelayedStore: a store was held in the virtual store buffer.
	ReorderDelayedStore ReorderKind = iota
	// ReorderVersionedLoad: a load read an old value from the history.
	ReorderVersionedLoad
	// ReorderForwarded: a load was forwarded from the local store buffer
	// (not a reordering per se, but part of the emulation trace).
	ReorderForwarded
)

// String names the reorder kind.
func (k ReorderKind) String() string {
	switch k {
	case ReorderDelayedStore:
		return "delayed-store"
	case ReorderVersionedLoad:
		return "versioned-load"
	case ReorderForwarded:
		return "store-forward"
	}
	return fmt.Sprintf("reorder(%d)", uint8(k))
}

// ReorderRecord logs one reordering event that actually happened at runtime.
// The fuzzer attaches these to bug reports so developers can see the exact
// out-of-order execution that triggered the bug (§4.4).
type ReorderRecord struct {
	Kind  ReorderKind
	Instr trace.InstrID
	Addr  trace.Addr
	Val   uint64 // the stale/held value involved
}

// String renders the record for reports.
func (r ReorderRecord) String() string {
	return fmt.Sprintf("%s instr=%d addr=0x%x val=0x%x", r.Kind, r.Instr, uint64(r.Addr), r.Val)
}

// Thread is the per-thread OEMU state: the virtual store buffer, the
// versioning window, the directives, and the reorder log.
type Thread struct {
	ID  int
	Dir Directives

	// sb is the virtual store buffer. It holds at most one entry per
	// location (coalescing preserves per-location program order) and is
	// tiny — bounded by the delayed-store sites of one system call — so
	// membership is a linear scan rather than a side index.
	sb []pendingStore

	// tRmb is the start of the versioning window: the logical time of the
	// most recent load/full/acquire barrier (or annotated load) executed
	// by this thread. Versioned loads may only observe values the
	// location held after tRmb.
	tRmb uint64

	// lastCommit records, per interned location, the time of this thread's
	// own most recent committed store. A versioned load must never observe
	// a value older than the thread's own committed store to the same
	// location (per-location coherence; the store-buffer priority rule of
	// §3.2 generalized to already-committed stores). Indexed by the
	// emulator's dense address index; maintained only while store-history
	// tracking is on (it is only consulted by versioned loads).
	lastCommit stamps

	// seen records, per interned location, the version time of the value
	// this thread most recently READ from the location. Per-location
	// read-read coherence (CoRR — preserved even on Alpha) forbids a later
	// load of the same location from observing an older version, so
	// versioned loads floor their window at it. Same indexing and tracking
	// regime as lastCommit.
	seen stamps

	// Log accumulates reorderings that actually occurred.
	Log []ReorderRecord

	em *OEMU
}

// at reads a dense-indexed stamp, treating missing tail entries as zero.
func (s stamps) at(idx int32) uint64 {
	if int(idx) < len(s) {
		return s[idx]
	}
	return 0
}

// setStamp writes a dense-indexed stamp, growing the slice to cover idx.
// Growth only happens while the emulator's intern set is still expanding;
// steady-state recycled runs write in place.
func (s stamps) set(idx int32, v uint64) stamps {
	for len(s) <= int(idx) {
		s = append(s, 0)
	}
	s[idx] = v
	return s
}

// stamps is a dense-indexed per-location timestamp vector.
type stamps []uint64

// Counters is the per-execution OEMU activity tally (§3 mechanisms made
// visible). Fields are plain uint64s — OEMU is driven by exactly one
// running thread at a time, so no atomics are needed. All fields except
// the arena block are deterministic for a given (program, hint, seed): the
// same run always produces the same counts. The arena fields (Threads*/
// HistRings*) depend on whether the emulator was recycled or fresh, so
// they are observability-only. The engine harvests the whole struct into
// the campaign metrics registry after each execution.
type Counters struct {
	// StoresDelayed counts stores held in a virtual store buffer (§3.1).
	StoresDelayed uint64
	// ForwardedLoads counts loads satisfied by store-to-load forwarding
	// from the local buffer.
	ForwardedLoads uint64
	// VersionedLoads counts loads that observed an old value from the
	// store history (§3.2).
	VersionedLoads uint64
	// StoresCommitted counts stores written through to memory (including
	// delayed stores at their eventual flush).
	StoresCommitted uint64
	// FlushSmpWmb counts store-buffer drains caused by a store barrier
	// (smp_wmb). Only non-empty drains are counted, for every Flush* field.
	FlushSmpWmb uint64
	// FlushSmpMb counts drains caused by a full barrier (smp_mb).
	FlushSmpMb uint64
	// FlushRelease counts drains caused by release semantics
	// (smp_store_release, clear_bit_unlock, or a release barrier).
	FlushRelease uint64
	// FlushInterrupt counts drains caused by an interrupt (§3.1).
	FlushInterrupt uint64
	// FlushSyscall counts drains at syscall exit (the in-vivo boundary
	// past which a real store buffer cannot hold a store).
	FlushSyscall uint64
	// FlushPPO counts drains forced by the active memory model's
	// preserved-program-order rules — under a FIFO store buffer (x86-TSO)
	// a store that cannot be delayed must not overtake older buffered
	// stores, and a second store to a buffered location must not coalesce.
	// Always zero under LKMM/ARMv8 (their buffers are unordered).
	FlushPPO uint64
	// LoadWindowAdvances counts versioning-window starts moving forward
	// (load/full/acquire barriers and annotated loads, when the clock has
	// advanced since the last window start).
	LoadWindowAdvances uint64

	// ThreadsRecycled counts NewThread acquisitions served from the
	// retired-thread freelist since the last Reset (arena tally,
	// recycling-dependent, not run-deterministic).
	ThreadsRecycled uint64
	// ThreadsBuilt counts NewThread acquisitions that allocated a fresh
	// Thread struct.
	ThreadsBuilt uint64
	// HistRingsRecycled counts store-history rings activated this run
	// whose entry array was retained from an earlier run.
	HistRingsRecycled uint64
	// HistRingsBuilt counts store-history rings whose entry array was
	// allocated fresh this run.
	HistRingsBuilt uint64
}

// OEMU is the emulator instance shared by all threads of one simulated
// kernel: the global logical clock, the store history, and the backing
// memory. It is driven by exactly one running thread at a time (the
// deterministic scheduler guarantees this), so it needs no locking.
type OEMU struct {
	Mem   *kmem.Memory
	clock uint64

	// mm is the active memory model's compiled semantics table. Every
	// barrier/atomicity ordering decision dispatches through it — dense
	// array loads, no per-op interface calls (see internal/memmodel). It
	// defaults to LKMM and is restored to LKMM by Reset, so recycled
	// emulators behave like New unless the engine re-selects a model.
	mm *memmodel.Table

	// trackHistory selects whether commits are recorded into the store
	// history (and coherence stamps maintained). It is on by default —
	// a fresh or reset emulator behaves exactly like the paper's — and
	// an executor that knows a run installs no versioned-load directive
	// may turn it off (SetHistoryTracking) to skip the bookkeeping, which
	// is unobservable without such directives.
	trackHistory bool
	// armFloor is the clock value at which history tracking was (re)armed
	// mid-run; versioned loads cannot observe values from before it (the
	// history before arming was never recorded). Zero when tracking has
	// been on since the run started.
	armFloor uint64

	// addrIndex interns accessed addresses into dense indices. It persists
	// across Reset — the simulated allocator reuses the same address
	// ranges run after run — so steady-state runs do no map inserts.
	addrIndex map[trace.Addr]int32
	// addrs maps dense index back to address (diagnostics, cap clearing).
	addrs []trace.Addr
	// hist holds the per-location store-history rings, dense-indexed.
	// Entry arrays are allocated on first use and retained across Reset.
	hist []histRing
	// histTouched lists the dense indices whose ring recorded at least one
	// commit since the last Reset, so Reset clears O(touched) rings.
	histTouched []int32

	threads []*Thread
	// free holds retired Thread structs (with their slice storage) for
	// reuse by NewThread after a Reset, cutting per-execution allocation
	// churn.
	free []*Thread

	// n tallies emulation activity since the last Reset.
	n Counters
}

// Counters returns the activity tally accumulated since the last Reset.
func (em *OEMU) Counters() Counters { return em.n }

// New returns an emulator over the given memory, running the default LKMM
// semantics.
func New(mem *kmem.Memory) *OEMU {
	return NewModel(mem, memmodel.LKMM)
}

// NewModel returns an emulator over the given memory running the given
// memory model (nil selects LKMM).
func NewModel(mem *kmem.Memory, mm *memmodel.Table) *OEMU {
	if mm == nil {
		mm = memmodel.LKMM
	}
	return &OEMU{
		Mem:          mem,
		mm:           mm,
		trackHistory: true,
		addrIndex:    make(map[trace.Addr]int32),
	}
}

// SetModel switches the active memory model (nil selects LKMM). Call it
// between runs, before the emulator executes accesses — switching models
// mid-run would mix semantics within one execution.
func (em *OEMU) SetModel(mm *memmodel.Table) {
	if mm == nil {
		mm = memmodel.LKMM
	}
	em.mm = mm
}

// Model returns the active memory model's semantics table.
func (em *OEMU) Model() *memmodel.Table { return em.mm }

// SetHistoryTracking turns store-history recording on or off. Tracking is
// on by default. Turning it off is a pure optimization valid only for runs
// that execute no versioned loads (no ReadOldValueAt directive): without
// such loads the history, and the per-thread coherence stamps it feeds,
// are unobservable. Call it before the run executes accesses; a
// ReadOldValueAt or InstallPlan with versioned-load sites re-enables
// tracking conservatively (versioned loads then cannot reach past the
// re-enable point, because no earlier history exists).
func (em *OEMU) SetHistoryTracking(on bool) {
	if on {
		em.armHistory()
		return
	}
	em.trackHistory = false
}

// armHistory enables history tracking, flooring versioned loads at the
// current clock when enabling mid-run (values committed while tracking was
// off were never recorded and can no longer be observed).
func (em *OEMU) armHistory() {
	if em.trackHistory {
		return
	}
	em.trackHistory = true
	em.armFloor = em.clock
}

// HistoryTracking reports whether commits are being recorded.
func (em *OEMU) HistoryTracking() bool { return em.trackHistory }

// addrOf interns an address into its dense index, growing the per-address
// tables on first sight.
func (em *OEMU) addrOf(addr trace.Addr) int32 {
	if idx, ok := em.addrIndex[addr]; ok {
		return idx
	}
	if len(em.addrs) >= internCap {
		em.clearIntern()
	}
	idx := int32(len(em.addrs))
	em.addrIndex[addr] = idx
	em.addrs = append(em.addrs, addr)
	em.hist = append(em.hist, histRing{})
	return idx
}

// clearIntern drops the intern table and everything indexed by it (the cap
// backstop; steady-state campaigns never hit it). Thread stamps keyed by
// the old indices are cleared too.
func (em *OEMU) clearIntern() {
	clear(em.addrIndex)
	em.addrs = em.addrs[:0]
	em.hist = em.hist[:0]
	em.histTouched = em.histTouched[:0]
	for _, t := range em.threads {
		clear(t.lastCommit)
		clear(t.seen)
	}
	for _, t := range em.free {
		clear(t.lastCommit)
		clear(t.seen)
	}
}

// NewThread registers a new emulated hardware thread, reusing a retired
// Thread (and its slice storage) when one is available.
func (em *OEMU) NewThread(id int) *Thread {
	if n := len(em.free); n > 0 {
		t := em.free[n-1]
		em.free[n-1] = nil
		em.free = em.free[:n-1]
		t.ID = id
		em.threads = append(em.threads, t)
		em.n.ThreadsRecycled++
		return t
	}
	t := &Thread{ID: id, em: em}
	t.Dir.em = em
	em.threads = append(em.threads, t)
	em.n.ThreadsBuilt++
	return t
}

// Reset returns the emulator to its freshly-constructed state — clock at
// zero, empty store history, tracking on, no registered threads — while
// retiring the current Thread structs into a freelist and keeping ring
// entry arrays attached to their interned locations for reuse. A reset
// OEMU behaves identically to New over a reset Memory.
func (em *OEMU) Reset() {
	em.clock = 0
	em.n = Counters{}
	em.trackHistory = true
	em.armFloor = 0
	em.mm = memmodel.LKMM
	for _, idx := range em.histTouched {
		r := &em.hist[idx]
		r.start = 0
		r.n = 0
	}
	em.histTouched = em.histTouched[:0]
	for _, t := range em.threads {
		t.reset()
		em.free = append(em.free, t)
	}
	em.threads = em.threads[:0]
}

// reset clears all per-thread emulation state while keeping slice storage
// for reuse.
func (t *Thread) reset() {
	t.Dir.reset()
	t.sb = t.sb[:0]
	t.tRmb = 0
	clear(t.lastCommit)
	clear(t.seen)
	t.Log = nil // logs may be retained by reports; do not reuse the array
}

// Now returns the current logical time. The clock advances on every commit.
func (em *OEMU) Now() uint64 { return em.clock }

// commit writes a value to memory, advances the clock, and — while history
// tracking is on — records the transition in the store history and stamps
// the thread's own-store coherence floor.
func (em *OEMU) commit(t *Thread, addr trace.Addr, val uint64) {
	if !em.trackHistory {
		em.Mem.Write(addr, val)
		em.clock++
		em.n.StoresCommitted++
		return
	}
	old := em.Mem.Read(addr)
	em.Mem.Write(addr, val)
	em.clock++
	idx := em.addrOf(addr)
	r := &em.hist[idx]
	if r.n == 0 && r.start == 0 {
		if r.entries == nil {
			r.entries = make([]histEntry, historyCapPerAddr)
			em.n.HistRingsBuilt++
		} else {
			em.n.HistRingsRecycled++
		}
		em.histTouched = append(em.histTouched, idx)
	}
	r.push(histEntry{old: old, new: val, time: em.clock, thread: t.ID})
	t.lastCommit = t.lastCommit.set(idx, em.clock)
	em.n.StoresCommitted++
}

// oldValue returns the value location addr held at the start of the window
// (after, i.e. strictly newer than, logical time floor) together with that
// value's version time (the commit time of the store that wrote it, 0 for
// the initial value), or ok=false when no store to addr committed after
// floor — in which case the current memory value is already the
// window-start value.
func (em *OEMU) oldValue(idx int32, floor uint64) (val, versionTime uint64, ok bool) {
	r := &em.hist[idx]
	var prevTime uint64
	for k := 0; k < int(r.n); k++ {
		e := r.at(k)
		if e.time > floor {
			return e.old, prevTime, true
		}
		prevTime = e.time
	}
	return 0, 0, false
}

// latestTime returns the commit time of the newest store to the interned
// location (0 if it was never stored to through OEMU).
func (em *OEMU) latestTime(idx int32) uint64 {
	r := &em.hist[idx]
	if r.n == 0 {
		return 0
	}
	return r.at(int(r.n) - 1).time
}

// Store executes a store operation at instruction site instr. Release
// semantics (per the active memory model) flush the store buffer first
// (LKMM Case 5). If the site is directed to delay — and the model permits
// delaying this annotation — the value is held in the virtual store buffer
// instead of being committed (§3.1). Under a store-store-ordered model
// (x86-TSO) the buffer is FIFO: no coalescing, and a store that commits
// now must drain older buffered stores first so visibility order matches
// program order.
func (t *Thread) Store(instr trace.InstrID, addr trace.Addr, val uint64, atom trace.Atomicity) {
	em := t.em
	mm := em.mm
	if mm.Release(atom) {
		// smp_store_release / clear_bit_unlock: all precedent accesses
		// complete before this store (flush acts as smp_wmb; precedent
		// loads already executed in place as OEMU never delays loads).
		t.flush(&em.n.FlushRelease)
	}
	if mm.StoreStoreOrdered() {
		// FIFO store buffer. Coalescing into a non-newest entry would
		// publish this value before a program-earlier buffered store to
		// another location; drain instead when the location is pending.
		if _, pending := t.PendingAt(addr); pending {
			t.flush(&em.n.FlushPPO)
		}
		if t.Dir.hasDelay(instr) && mm.Delayable(atom) {
			t.sb = append(t.sb, pendingStore{addr: addr, val: val, instr: instr})
			t.Log = append(t.Log, ReorderRecord{Kind: ReorderDelayedStore, Instr: instr, Addr: addr, Val: val})
			em.n.StoresDelayed++
			return
		}
		if len(t.sb) > 0 {
			// Committing now would overtake older buffered stores.
			t.flush(&em.n.FlushPPO)
		}
		em.commit(t, addr, val)
		return
	}
	for i := range t.sb {
		if t.sb[i].addr == addr {
			// A delayed store to this location is already in flight.
			// Coalesce: overwrite its value in place, preserving
			// per-location program order (coherence). The intermediate
			// value never becomes visible, which a real store buffer
			// also permits.
			t.sb[i].val = val
			t.sb[i].instr = instr
			return
		}
	}
	if t.Dir.hasDelay(instr) && mm.Delayable(atom) {
		t.sb = append(t.sb, pendingStore{addr: addr, val: val, instr: instr})
		t.Log = append(t.Log, ReorderRecord{Kind: ReorderDelayedStore, Instr: instr, Addr: addr, Val: val})
		em.n.StoresDelayed++
		return
	}
	em.commit(t, addr, val)
}

// Load executes a load operation at instruction site instr and returns the
// value observed. Resolution order (§3.1/§3.2): local store buffer
// (store-to-load forwarding) first, then — if directed — an old value from
// the store history bounded by the versioning window, then memory.
//
// After the load, annotated loads (READ_ONCE, atomics, acquire) advance the
// versioning window: the LKMM treats them as a load barrier for subsequent
// loads (Cases 4 and 6; §3.2 "Dependencies from a load operation").
func (t *Thread) Load(instr trace.InstrID, addr trace.Addr, atom trace.Atomicity) uint64 {
	em := t.em
	var val uint64
	switch {
	case t.forwardedVal(addr, &val):
		t.Log = append(t.Log, ReorderRecord{Kind: ReorderForwarded, Instr: instr, Addr: addr, Val: val})
		em.n.ForwardedLoads++
	case em.trackHistory && em.mm.Versionable(atom) && t.Dir.hasReadOld(instr):
		idx := em.addrOf(addr)
		// The versioning window floor: the last load barrier, but never
		// older than the thread's own committed store to the location,
		// nor than the version it has already observed there (CoRR:
		// per-location read-read coherence holds on every architecture,
		// Alpha included), nor than the point history tracking was armed.
		floor := t.tRmb
		if lc := t.lastCommit.at(idx); lc > floor {
			floor = lc
		}
		if sv := t.seen.at(idx); sv > floor {
			floor = sv
		}
		if em.armFloor > floor {
			floor = em.armFloor
		}
		if old, vt, ok := em.oldValue(idx, floor); ok {
			val = old
			t.seen = t.seen.set(idx, vt)
			t.Log = append(t.Log, ReorderRecord{Kind: ReorderVersionedLoad, Instr: instr, Addr: addr, Val: val})
			em.n.VersionedLoads++
		} else {
			val = em.Mem.Read(addr)
			t.seen = t.seen.set(idx, em.latestTime(idx))
		}
	default:
		val = em.Mem.Read(addr)
		if em.trackHistory {
			idx := em.addrOf(addr)
			t.seen = t.seen.set(idx, em.latestTime(idx))
		}
	}
	if em.mm.LoadBarrier(atom) {
		// A load the model treats as a load barrier (LKMM Cases 4 and 6;
		// only acquire under ARMv8): subsequent loads must not observe
		// values older than this point.
		t.advanceWindow()
	}
	return val
}

// advanceWindow moves the versioning-window start to now, counting the
// advance when the window actually moves.
func (t *Thread) advanceWindow() {
	if t.em.clock > t.tRmb {
		t.em.n.LoadWindowAdvances++
	}
	t.tRmb = t.em.clock
}

// Barrier executes a memory barrier (Table 1). Store-ordering barriers flush
// the virtual store buffer (no store may be delayed across them); load-
// ordering barriers advance the versioning window (no later load may read a
// value older than the barrier point).
func (t *Thread) Barrier(kind trace.BarrierKind) {
	mm := t.em.mm
	if mm.OrdersStores(kind) {
		t.flush(t.flushCauseCounter(kind))
	}
	if mm.OrdersLoads(kind) {
		t.advanceWindow()
	}
}

// flushCauseCounter maps a store-ordering barrier kind to the Counters
// field that tallies the drain it causes.
func (t *Thread) flushCauseCounter(kind trace.BarrierKind) *uint64 {
	n := &t.em.n
	switch kind {
	case trace.BarrierStore:
		return &n.FlushSmpWmb
	case trace.BarrierRelease:
		return &n.FlushRelease
	default: // full barrier (smp_mb) and anything else that orders stores
		return &n.FlushSmpMb
	}
}

// Interrupt models an interrupt on the processor running this thread, which
// drains the virtual store buffer (§3.1).
func (t *Thread) Interrupt() { t.flush(&t.em.n.FlushInterrupt) }

// FlushAtSyscallExit drains the virtual store buffer at the syscall
// boundary (§3.1: a real store buffer cannot hold a store past the return
// to userspace), attributing the drain to the syscall-exit cause.
func (t *Thread) FlushAtSyscallExit() { t.flush(&t.em.n.FlushSyscall) }

// flush drains the store buffer, incrementing cause only when the drain
// actually committed something (an empty flush is not an event).
func (t *Thread) flush(cause *uint64) {
	if len(t.sb) > 0 {
		*cause++
	}
	t.Flush()
}

// Flush commits all delayed stores, in their original program order.
func (t *Thread) Flush() {
	for _, p := range t.sb {
		t.em.commit(t, p.addr, p.val)
	}
	t.sb = t.sb[:0]
}

// PendingStores returns the number of in-flight delayed stores.
func (t *Thread) PendingStores() int { return len(t.sb) }

// PendingAt reports whether a delayed store to addr is in flight and, if so,
// its held value.
func (t *Thread) PendingAt(addr trace.Addr) (uint64, bool) {
	for i := range t.sb {
		if t.sb[i].addr == addr {
			return t.sb[i].val, true
		}
	}
	return 0, false
}

// WindowStart returns the current versioning-window start t_rmb.
func (t *Thread) WindowStart() uint64 { return t.tRmb }

// forwardedVal reports whether a delayed store to addr is in flight,
// storing its held value through val.
func (t *Thread) forwardedVal(addr trace.Addr, val *uint64) bool {
	for i := range t.sb {
		if t.sb[i].addr == addr {
			*val = t.sb[i].val
			return true
		}
	}
	return false
}

// ResetDirectives clears the reordering plan and the log in place, keeping
// buffered state (used between system calls of one input).
func (t *Thread) ResetDirectives() {
	t.Dir.reset()
	t.Log = t.Log[:0]
}

// ReorderedCount returns how many genuine reorderings (delayed stores or
// versioned loads, excluding forwards) occurred — the fuzzer uses this to
// confirm a scheduling hint actually fired.
func (t *Thread) ReorderedCount() int {
	n := 0
	for _, r := range t.Log {
		if r.Kind != ReorderForwarded {
			n++
		}
	}
	return n
}
