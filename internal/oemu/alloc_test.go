package oemu

import (
	"testing"

	"ozz/internal/kmem"
	"ozz/internal/trace"
)

// runWorkload drives one representative no-directive execution over a
// recycled emulator: two threads storing, loading (plain and annotated),
// hitting barriers, and draining at the syscall boundary.
func runWorkload(em *OEMU) {
	a := em.NewThread(0)
	b := em.NewThread(1)
	for i := 0; i < 8; i++ {
		site := trace.InstrID(i + 1)
		a.Store(site, addrX+trace.Addr(i%4*8), uint64(i), trace.Plain)
		_ = b.Load(site, addrX+trace.Addr(i%4*8), trace.Once)
		a.Barrier(trace.BarrierStore)
		_ = a.Load(site, addrY, trace.Plain)
		b.Store(site, addrZ, uint64(i), trace.AtomicRelease)
	}
	a.FlushAtSyscallExit()
	b.FlushAtSyscallExit()
}

// TestRecycledRunAllocationFree is the steady-state allocation regression
// gate: once an emulator has been through one run (intern table populated,
// rings and thread structs built), a recycled no-directive run must not
// allocate at all — Reset recycles the arenas instead of reallocating.
func TestRecycledRunAllocationFree(t *testing.T) {
	mem := kmem.New()
	mem.Sanitize = false
	em := New(mem)
	// Warm-up: populate intern table, rings, thread freelist.
	for i := 0; i < 3; i++ {
		runWorkload(em)
		mem.Reset()
		em.Reset()
	}
	allocs := testing.AllocsPerRun(50, func() {
		runWorkload(em)
		mem.Reset()
		em.Reset()
	})
	if allocs != 0 {
		t.Fatalf("recycled no-directive run allocates %.1f times, want 0", allocs)
	}
}

// TestRecycledRunAllocationFreeTracked repeats the gate with store-history
// tracking left on (the default): ring recycling and in-place stamp writes
// must keep the tracked path allocation-free too.
func TestRecycledRunAllocationFreeTracked(t *testing.T) {
	mem := kmem.New()
	mem.Sanitize = false
	em := New(mem)
	for i := 0; i < 3; i++ {
		runWorkload(em)
		mem.Reset()
		em.Reset()
	}
	if !em.HistoryTracking() {
		t.Fatal("tracking should be on by default after Reset")
	}
	allocs := testing.AllocsPerRun(50, func() {
		runWorkload(em)
		mem.Reset()
		em.Reset()
	})
	if allocs != 0 {
		t.Fatalf("tracked recycled run allocates %.1f times, want 0", allocs)
	}
}

// TestHistoryTrackingGate pins the tracking switch semantics: with tracking
// off nothing is recorded, re-arming mid-run floors versioned loads at the
// re-arm point, and Reset restores the default.
func TestHistoryTrackingGate(t *testing.T) {
	em, ths, mem := env(2)
	a, b := ths[0], ths[1]
	em.SetHistoryTracking(false)
	a.Store(1, addrX, 1, trace.Plain)
	a.Store(1, addrX, 2, trace.Plain)
	if got := mem.Read(addrX); got != 2 {
		t.Fatalf("stores must still commit with tracking off: X=%d", got)
	}
	// Re-arm mid-run: the directive path comes back, but the pre-arm
	// history was never recorded, so the load cannot observe X=1 or X=0.
	a.Dir.ReadOldValueAt(2)
	if !em.HistoryTracking() {
		t.Fatal("ReadOldValueAt must re-arm history tracking")
	}
	if got := a.Load(2, addrX, trace.Plain); got != 2 {
		t.Fatalf("versioned load reached past the re-arm point: got %d, want 2", got)
	}
	b.Store(3, addrX, 3, trace.Plain)
	// Now a post-arm old value exists from another thread: the window
	// floor is the arm point, and CoRR pins the already-seen version 2.
	if got := a.Load(2, addrX, trace.Plain); got != 2 {
		t.Fatalf("versioned load after re-arm: got %d, want old value 2", got)
	}
	em.Reset()
	if !em.HistoryTracking() {
		t.Fatal("Reset must restore tracking to the default (on)")
	}
}

// TestInstallPlanEquivalence: a precompiled plan behaves exactly like the
// same directives installed incrementally.
func TestInstallPlanEquivalence(t *testing.T) {
	run := func(install func(a *Thread)) (uint64, int) {
		_, ths, _ := env(2)
		a, b := ths[0], ths[1]
		install(a)
		a.Store(1, addrX, 1, trace.Plain) // delayed
		a.Store(2, addrY, 2, trace.Plain) // committed
		got := b.Load(3, addrX, trace.Plain)
		a.Flush()
		return got, a.ReorderedCount()
	}
	incVal, incN := run(func(a *Thread) { a.Dir.DelayStoreAt(1) })
	p := CompilePlan([]trace.InstrID{1}, nil)
	planVal, planN := run(func(a *Thread) { a.InstallPlan(p) })
	if incVal != planVal || incN != planN {
		t.Fatalf("plan path diverges: incremental (%d, %d) vs plan (%d, %d)",
			incVal, incN, planVal, planN)
	}
	if p.Empty() || p.HasReads() {
		t.Fatalf("plan shape wrong: empty=%v hasReads=%v", p.Empty(), p.HasReads())
	}
}

// TestPlanImmutableUnderThreadMutation: adding incremental directives after
// InstallPlan must not write into the shared plan.
func TestPlanImmutableUnderThreadMutation(t *testing.T) {
	p := CompilePlan([]trace.InstrID{5}, []trace.InstrID{7})
	_, ths, _ := env(1)
	a := ths[0]
	a.InstallPlan(p)
	a.Dir.DelayStoreAt(1)
	a.Dir.ReadOldValueAt(2)
	a.ResetDirectives()
	a.Dir.DelayStoreAt(9)
	if got := p.DelaySites(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("plan delay sites mutated: %v", got)
	}
	if got := p.ReadSites(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("plan read sites mutated: %v", got)
	}
	if a.Dir.hasDelay(5) {
		t.Fatal("ResetDirectives must detach the installed plan")
	}
}

// TestDirectiveSetSemantics pins the sorted-set behavior of the directive
// slices: duplicates collapse, membership is exact.
func TestDirectiveSetSemantics(t *testing.T) {
	var d Directives
	for _, i := range []trace.InstrID{9, 3, 9, 1, 3, 200} {
		d.DelayStoreAt(i)
	}
	for _, i := range []trace.InstrID{1, 3, 9, 200} {
		if !d.hasDelay(i) {
			t.Fatalf("site %d missing from delay set", i)
		}
	}
	for _, i := range []trace.InstrID{0, 2, 4, 199, 201} {
		if d.hasDelay(i) {
			t.Fatalf("site %d unexpectedly in delay set", i)
		}
	}
	if len(d.delayStore) != 4 {
		t.Fatalf("duplicates not collapsed: %v", d.delayStore)
	}
	if d.Empty() {
		t.Fatal("non-empty set reported Empty")
	}
}
