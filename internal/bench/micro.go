// Microbenchmarks for the hot-path primitives every campaign iteration is
// built from: OEMU store/load stepping, commit into the store-history
// ring, delayed-store flushing, scheduler yields and switches, and the
// kmem sanitizer access check. Each driver takes a *testing.B, so the same
// code backs both `go test -bench Micro` (via the wrappers in
// micro_bench_test.go) and the ozz-bench binary's BENCH_*.json writer
// (via testing.Benchmark).
package bench

import (
	"testing"

	"ozz/internal/kmem"
	"ozz/internal/memmodel"
	"ozz/internal/oemu"
	"ozz/internal/sched"
	"ozz/internal/trace"
)

// Micro names one microbenchmark driver.
type Micro struct {
	// Name is the stable metric identifier used in BENCH_*.json.
	Name string
	// Fn is the benchmark body.
	Fn func(b *testing.B)
}

// Micros returns the microbenchmark suite in fixed order.
func Micros() []Micro {
	return []Micro{
		{"oemu_step", MicroOEMUStep},
		{"oemu_commit_tracked", MicroOEMUCommitTracked},
		{"oemu_delay_flush", MicroOEMUDelayFlush},
		{"model_dispatch", MicroModelDispatch},
		{"sched_yield", MicroSchedYield},
		{"sched_switch", MicroSchedSwitch},
		{"combinator_dispatch", MicroCombinatorDispatch},
		{"kmem_check", MicroKmemCheck},
	}
}

// microEnv builds a warm emulator over unsanitized memory with n threads
// and four words of storage.
func microEnv(n int) (*oemu.OEMU, []*oemu.Thread, trace.Addr) {
	mem := kmem.New()
	mem.Sanitize = false
	em := oemu.New(mem)
	base := mem.AllocZeroed(4)
	ths := make([]*oemu.Thread, n)
	for i := range ths {
		ths[i] = em.NewThread(i)
	}
	return em, ths, base
}

// MicroOEMUStep measures the no-directive fast path one instrumented
// access pays — one plain store plus one plain load with history tracking
// off, the state every engine run without versioned loads executes in.
func MicroOEMUStep(b *testing.B) {
	em, ths, base := microEnv(1)
	em.SetHistoryTracking(false)
	t := ths[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := base + trace.Addr(i%4*8)
		t.Store(1, a, uint64(i), trace.Plain)
		_ = t.Load(2, a, trace.Plain)
	}
}

// MicroOEMUCommitTracked measures a store commit with history tracking on:
// memory write-through plus a store-history ring push and coherence-stamp
// update (the default direct-API path).
func MicroOEMUCommitTracked(b *testing.B) {
	_, ths, base := microEnv(1)
	t := ths[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Store(1, base+trace.Addr(i%4*8), uint64(i), trace.Plain)
	}
}

// MicroOEMUDelayFlush measures one delayed-store round trip: a store held
// in the virtual store buffer by a delay directive, then drained by an
// explicit flush. The reorder log is truncated in place each round to keep
// the loop steady-state.
func MicroOEMUDelayFlush(b *testing.B) {
	_, ths, base := microEnv(1)
	t := ths[0]
	t.Dir.DelayStoreAt(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Store(1, base, uint64(i), trace.Plain)
		t.Flush()
		t.Log = t.Log[:0]
	}
}

// MicroModelDispatch measures the cost of the memory-model parameterized
// hot path under a non-default model: a delayed store, a barrier whose
// store-ordering semantics come from the compiled model table, and a
// plain load, all under x86-TSO. Guards the table-lookup dispatch design
// against regressing into interface calls or allocations.
func MicroModelDispatch(b *testing.B) {
	em, ths, base := microEnv(1)
	em.SetModel(memmodel.TSO)
	t := ths[0]
	t.Dir.DelayStoreAt(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Store(1, base, uint64(i), trace.Plain)
		t.Barrier(trace.BarrierFull)
		_ = t.Load(2, base, trace.Plain)
		t.Log = t.Log[:0]
	}
}

// MicroSchedYield measures the sequential-session yield fast path — the
// scheduling point every instrumented access hits in STI and baseline
// runs, where the policy never switches.
func MicroSchedYield(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	s := sched.NewSession(sched.Sequential{})
	s.Spawn(1, 0, func(t *sched.Task) {
		for i := 0; i < b.N; i++ {
			t.Yield(1)
		}
	})
	s.Run()
}

// switchEvery is a policy that moves the run token to the other of two
// tasks at every scheduling point — the worst-case preemption rate.
type switchEvery struct{}

func (switchEvery) First(order []int) int { return order[0] }
func (switchEvery) OnYield(cur *sched.Task, _ trace.InstrID) (int, bool) {
	if cur.ID == 1 {
		return 2, true
	}
	return 1, true
}

// MicroSchedSwitch measures one full preemption: a scheduling point where
// the run token is handed to the other task (channel handoff included).
func MicroSchedSwitch(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	s := sched.NewSession(switchEvery{})
	body := func(t *sched.Task) {
		for i := 0; i < b.N/2; i++ {
			t.Yield(1)
		}
	}
	s.Spawn(1, 1, body)
	s.Spawn(2, 2, body)
	s.Run()
}

// MicroCombinatorDispatch measures a scheduling point dispatched through
// the predicate-combinator stack the Migration strategy builds
// (MigrateAt → Guarded → Breakpoint) on its non-matching fast path — the
// cost every yield pays when a migration-aware policy is armed but idle.
func MicroCombinatorDispatch(b *testing.B) {
	bp := &sched.Breakpoint{FromTask: 0, Instr: 1 << 30, Pos: sched.PosBefore, ToTask: 1}
	g := &sched.Guarded{Inner: bp, When: sched.And(sched.OnTask(0), sched.Not(sched.OnNthOccurrence(1<<30, 1)))}
	m := &sched.MigrateAt{Inner: g, Task: 1, ToCPU: 0}
	s := sched.NewSession(m)
	s.Spawn(0, 0, func(h *sched.Task) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.OnYield(h, 7)
		}
	})
	s.Spawn(1, 1, func(h *sched.Task) {})
	if aborted := s.Run(); aborted != nil {
		b.Fatalf("aborted: %v", aborted)
	}
}

// MicroKmemCheck measures one sanitized word access: the KASAN-style
// bounds/state check plus the read itself.
func MicroKmemCheck(b *testing.B) {
	mem := kmem.New()
	base := mem.AllocZeroed(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := base + trace.Addr(i%4*8)
		if f := mem.Check(1, a, trace.Load); f != nil {
			b.Fatal(f)
		}
		_ = mem.Read(a)
	}
}
