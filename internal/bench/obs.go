package bench

import (
	"sync"

	"ozz/internal/core"
	"ozz/internal/obs"
)

// instMu guards the package-level instrumentation settings; bench
// harnesses read them when constructing campaigns.
var instMu sync.Mutex
var instReg *obs.Registry
var instEv *obs.EventLog

// Instrument routes every campaign the bench harnesses construct —
// OZZ fuzzers, pools, and the baselines — into one shared registry and
// event log (either may be nil). cmd/ozz-bench wires its -metrics-addr
// and -events flags through here so a whole table regeneration is
// scrapable from one endpoint. Sharing one registry makes engine
// kernel/cache counters cumulative across the campaigns it covers.
// Purely observational: table contents are unchanged.
func Instrument(reg *obs.Registry, ev *obs.EventLog) {
	instMu.Lock()
	instReg, instEv = reg, ev
	instMu.Unlock()
}

// instrumented returns the current instrumentation settings.
func instrumented() (*obs.Registry, *obs.EventLog) {
	instMu.Lock()
	defer instMu.Unlock()
	return instReg, instEv
}

// campaignConfig stamps the bench instrumentation onto a campaign config.
func campaignConfig(cfg core.Config) core.Config {
	cfg.Obs, cfg.Events = instrumented()
	return cfg
}
