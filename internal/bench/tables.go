package bench

import (
	"fmt"
	"strings"

	"ozz/internal/baseline/ofence"
	"ozz/internal/core"
	"ozz/internal/modules"
)

// BugRunResult is one row of the Table 3 / Table 4 harnesses.
type BugRunResult struct {
	Bug   modules.BugInfo
	Found bool
	// Tests is the number of hypothetical-barrier test executions (MTIs)
	// until the bug fired (the Table 4 "# of tests" column).
	Tests int
	// HintRank is the §4.3 search-heuristic rank of the triggering hint
	// (1 = the hint reordering the most accesses).
	HintRank int
	// Type is the observed reordering type.
	Type string
}

// runBug runs a seeded OZZ campaign against one bug (plus extra switches)
// and reports the outcome. The campaign uses the engine strategy the bug
// declares (BugInfo.Strategy), so migration-sensitive bugs run under the
// Migration strategy with no per-row special casing.
func runBug(b modules.BugInfo, budget int, extra ...string) BugRunResult {
	f := core.NewFuzzer(campaignConfig(core.Config{
		Modules:  []string{b.Module},
		Bugs:     modules.Bugs(append([]string{b.Switch}, extra...)...),
		Seed:     42,
		UseSeeds: true,
		Strategy: b.Strategy,
	}))
	want := b.Title
	if want == "" {
		want = b.SoftTitle
	}
	r := f.RunUntil(want, budget)
	if r == nil {
		return BugRunResult{Bug: b}
	}
	return BugRunResult{Bug: b, Found: true, Tests: r.Tests, HintRank: r.HintRank, Type: r.Type}
}

// RunTable3 reproduces Table 3: OZZ finds each of the 11 new bugs.
func RunTable3(budget int) []BugRunResult {
	var rows []BugRunResult
	for _, b := range modules.AllBugs() {
		if b.Table != 3 {
			continue
		}
		rows = append(rows, runBug(b, budget))
	}
	return rows
}

// FormatTable3 renders the Table 3 text table.
func FormatTable3(rows []BugRunResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-7s %-9s %-11s %-10s %-6s %s\n", "ID", "Version", "Subsystem", "Status", "Found", "Summary")
	for _, r := range rows {
		found := "no"
		if r.Found {
			found = "YES"
		}
		fmt.Fprintf(&sb, "%-7s %-9s %-11s %-10s %-6s %s\n",
			r.Bug.ID, r.Bug.KernelVersion, r.Bug.Subsystem, r.Bug.Status, found, r.Bug.Title)
	}
	return sb.String()
}

// RunTable4 reproduces Table 4: the known-bug benchmark. Every row —
// sbitmap included — runs under its declared strategy, so the
// migration-sensitive #6 reproduces organically (9/9; the paper reports
// 8/9 with pinned threads plus a manual §6.2 assist).
func RunTable4(budget int) []BugRunResult {
	var rows []BugRunResult
	for _, b := range modules.AllBugs() {
		if b.Table != 4 {
			continue
		}
		rows = append(rows, runBug(b, budget))
	}
	return rows
}

// RunSbitmapPinned is the §6.2 negative control: sbitmap under the plain
// OOO executor (pinned threads, no cross-CPU moves) must NOT reproduce —
// each thread resolves its own per-CPU copy, so the freed word is never
// observed stale. The Migration strategy row in RunTable4 is the positive.
func RunSbitmapPinned(budget int) BugRunResult {
	b, _ := modules.FindBug("sbitmap:freed_order")
	b.Strategy = "" // force pinned-thread OOO
	return runBug(b, budget)
}

// FormatTable4 renders the Table 4 text table.
func FormatTable4(rows []BugRunResult, pinned BugRunResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-7s %-11s %-9s %-12s %-10s %-5s\n", "ID", "Subsystem", "Version", "Reproduced?", "# of tests", "Type")
	for _, r := range rows {
		rep := "x"
		tests := "-"
		typ := r.Bug.Type
		switch {
		case r.Found && r.Bug.Repro == "partial":
			rep = "yes*" // wrong-value symptom, not a crash
			tests = fmt.Sprintf("%d", r.Tests)
		case r.Found:
			rep = "yes"
			tests = fmt.Sprintf("%d", r.Tests)
		}
		fmt.Fprintf(&sb, "%-7s %-11s %-9s %-12s %-10s %-5s\n",
			r.Bug.ID, r.Bug.Subsystem, r.Bug.KernelVersion, rep, tests, typ)
	}
	fmt.Fprintf(&sb, "\ncontrol: sbitmap under pinned-thread OOO (no migration, §6.2):\n")
	rep := "x (expected: per-CPU copies never alias)"
	if pinned.Found {
		rep = fmt.Sprintf("yes (%d tests) — UNEXPECTED", pinned.Tests)
	}
	fmt.Fprintf(&sb, "%-7s %-11s %-9s %s\n", pinned.Bug.ID, pinned.Bug.Subsystem, pinned.Bug.KernelVersion, rep)
	return sb.String()
}

// HeuristicRow is the §4.3 search-heuristic validation: which hint rank
// triggered each bug. The paper reports 11 of 19 bugs triggered by the
// maximum-reordering hint and 6 by the second largest.
type HeuristicRow struct {
	Bug  modules.BugInfo
	Rank int
}

// RunHeuristic measures the triggering hint rank for every reproducible
// OOO bug of the corpus.
func RunHeuristic(budget int) ([]HeuristicRow, map[int]int) {
	var rows []HeuristicRow
	dist := map[int]int{}
	for _, b := range modules.AllBugs() {
		if b.Type == "" || b.Switch == "sbitmap:freed_order" {
			continue
		}
		r := runBug(b, budget)
		if !r.Found {
			continue
		}
		rows = append(rows, HeuristicRow{Bug: b, Rank: r.HintRank})
		dist[r.HintRank]++
	}
	return rows, dist
}

// FormatHeuristic renders the rank distribution.
func FormatHeuristic(rows []HeuristicRow, dist map[int]int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-28s %s\n", "ID", "Switch", "Triggering hint rank")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-28s %d\n", r.Bug.ID, r.Bug.Switch, r.Rank)
	}
	fmt.Fprintf(&sb, "\nrank distribution (paper: 11/19 rank-1, 6/19 rank-2):\n")
	for rank := 1; rank <= 8; rank++ {
		if n := dist[rank]; n > 0 {
			fmt.Fprintf(&sb, "  rank %d: %d bugs\n", rank, n)
		}
	}
	return sb.String()
}

// OFenceRow is one §6.4 comparison row.
type OFenceRow struct {
	Bug      modules.BugInfo
	Detected bool
	GroundOK bool
}

// RunOFence evaluates the static paired-barrier matcher on the 11 new bugs.
func RunOFence() ([]OFenceRow, int) {
	var rows []OFenceRow
	misses := 0
	for _, b := range modules.AllBugs() {
		if b.Table != 3 {
			continue
		}
		det := ofence.Detects(b)
		rows = append(rows, OFenceRow{Bug: b, Detected: det, GroundOK: det == b.OFencePattern})
		if !det {
			misses++
		}
	}
	return rows, misses
}

// FormatOFence renders the §6.4 comparison.
func FormatOFence(rows []OFenceRow, misses int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-28s %-18s\n", "ID", "Switch", "OFence detects?")
	for _, r := range rows {
		det := "no (outside patterns)"
		if r.Detected {
			det = "yes (unpaired half)"
		}
		fmt.Fprintf(&sb, "%-8s %-28s %-18s\n", r.Bug.ID, r.Bug.Switch, det)
	}
	fmt.Fprintf(&sb, "\n%d of %d new bugs are outside OFence's paired-barrier patterns (paper: 8 of 11)\n",
		misses, len(rows))
	return sb.String()
}
