// Package bench implements the paper's evaluation harnesses: the
// LMBench-shaped microbenchmark of Table 5 (instrumented vs. plain kernel),
// the fuzzing-throughput comparison of §6.3.2 (OZZ vs. a syzkaller-style
// baseline), and text-table renderers for the evaluation tables.
package bench

import (
	"fmt"
	"strings"
	"time"

	"ozz/internal/kernel"
	"ozz/internal/sched"
	"ozz/internal/trace"
	"ozz/internal/vfs"
)

// LMBenchRow is one Table 5 row: the per-operation latency on the plain
// kernel and on the OEMU-instrumented kernel, and their ratio.
type LMBenchRow struct {
	Name     string
	BaseNs   float64
	InstrNs  float64
	Overhead float64
}

// workload is one LMBench test: body runs `iters` operations on a fresh
// kernel and returns the time spent in the measured region.
type workload struct {
	name string
	body func(k *kernel.Kernel, iters int) time.Duration
}

// runTimed executes fn on a single task inside a session and returns the
// measured duration fn reports.
func runTimed(k *kernel.Kernel, fn func(t *kernel.Task) time.Duration) time.Duration {
	task := k.NewTask(0)
	var d time.Duration
	s := sched.NewSession(sched.Sequential{})
	s.Spawn(0, 0, func(st *sched.Task) {
		task.Bind(st)
		d = fn(task)
	})
	if aborted := s.Run(); aborted != nil {
		panic(aborted)
	}
	return d
}

// alternate is a scheduling policy that switches between two tasks at every
// scheduling point — the context-switch workload.
type alternate struct{}

func (alternate) First(order []int) int { return order[0] }
func (alternate) OnYield(cur *sched.Task, _ trace.InstrID) (int, bool) {
	return 1 - cur.ID, true
}

// workloads mirrors Table 5's row set.
func workloads() []workload {
	return []workload{
		{"null", func(k *kernel.Kernel, iters int) time.Duration {
			fs := vfs.New(k)
			return runTimed(k, func(t *kernel.Task) time.Duration {
				start := time.Now()
				for i := 0; i < iters; i++ {
					fs.Getpid(t)
					t.SyscallReturn()
				}
				return time.Since(start)
			})
		}},
		{"stat", func(k *kernel.Kernel, iters int) time.Duration {
			fs := vfs.New(k)
			return runTimed(k, func(t *kernel.Task) time.Duration {
				fs.Close(t, fs.Creat(t, 0x51a7))
				start := time.Now()
				for i := 0; i < iters; i++ {
					fs.Stat(t, 0x51a7)
					t.SyscallReturn()
				}
				return time.Since(start)
			})
		}},
		{"open/close", func(k *kernel.Kernel, iters int) time.Duration {
			fs := vfs.New(k)
			return runTimed(k, func(t *kernel.Task) time.Duration {
				fs.Close(t, fs.Creat(t, 0x0f11))
				start := time.Now()
				for i := 0; i < iters; i++ {
					fd := fs.Open(t, 0x0f11)
					fs.Close(t, fd)
					t.SyscallReturn()
				}
				return time.Since(start)
			})
		}},
		{"File create", func(k *kernel.Kernel, iters int) time.Duration {
			fs := vfs.New(k)
			return runTimed(k, func(t *kernel.Task) time.Duration {
				start := time.Now()
				for i := 0; i < iters; i++ {
					fd := fs.Creat(t, uint64(i%16+1))
					fs.Close(t, fd)
					t.SyscallReturn()
					// Deletion kept outside the measured name reuse:
					// unlink so the directory never fills.
					fs.Unlink(t, uint64(i%16+1))
				}
				return time.Since(start)
			})
		}},
		{"File delete", func(k *kernel.Kernel, iters int) time.Duration {
			fs := vfs.New(k)
			return runTimed(k, func(t *kernel.Task) time.Duration {
				// Batched: create 16 untimed, unlink 16 timed —
				// keeps timer overhead out of the per-op figure.
				var total time.Duration
				for i := 0; i < iters; i += 16 {
					for n := uint64(1); n <= 16; n++ {
						fs.Close(t, fs.Creat(t, n))
					}
					start := time.Now()
					for n := uint64(1); n <= 16; n++ {
						fs.Unlink(t, n)
						t.SyscallReturn()
					}
					total += time.Since(start)
				}
				return total
			})
		}},
		{"ctxsw 2p/0k", func(k *kernel.Kernel, iters int) time.Duration {
			// Two tasks ping-pong through the scheduler. The handoff
			// itself exists on the plain kernel too (an explicit
			// Yield); the instrumented kernel additionally pays the
			// access callback on the shared word.
			t0, t1 := k.NewTask(0), k.NewTask(1)
			word := k.Mem.AllocZeroed(2)
			var d time.Duration
			s := sched.NewSession(alternate{})
			body := func(task *kernel.Task, site trace.InstrID) func(*sched.Task) {
				return func(st *sched.Task) {
					task.Bind(st)
					start := time.Now()
					for i := 0; i < iters; i++ {
						task.Store(site, word+trace.Addr(8*uint64(site-1)), uint64(i))
						st.Yield(site) // the context switch
					}
					if task.ID == 0 {
						d = time.Since(start)
					}
				}
			}
			s.Spawn(0, 0, body(t0, 1))
			s.Spawn(1, 1, body(t1, 2))
			if aborted := s.Run(); aborted != nil {
				panic(aborted)
			}
			return d
		}},
		{"pipe", func(k *kernel.Kernel, iters int) time.Duration {
			fs := vfs.New(k)
			return runTimed(k, func(t *kernel.Task) time.Duration {
				p := fs.NewPipe(t)
				start := time.Now()
				for i := 0; i < iters; i++ {
					p.Write(t, uint64(i))
					p.Read(t)
					t.SyscallReturn()
				}
				return time.Since(start)
			})
		}},
		{"unix", func(k *kernel.Kernel, iters int) time.Duration {
			fs := vfs.New(k)
			return runTimed(k, func(t *kernel.Task) time.Duration {
				// A socketpair round trip: two rings, one per direction.
				a, b := fs.NewPipe(t), fs.NewPipe(t)
				start := time.Now()
				for i := 0; i < iters; i++ {
					a.Write(t, uint64(i))
					a.Read(t)
					b.Write(t, uint64(i))
					b.Read(t)
					t.SyscallReturn()
				}
				return time.Since(start)
			})
		}},
		{"fork", func(k *kernel.Kernel, iters int) time.Duration {
			fs := vfs.New(k)
			return runTimed(k, func(t *kernel.Task) time.Duration {
				// A realistic parent: a dozen open descriptors whose
				// reference counts fork must walk.
				for n := uint64(1); n <= 12; n++ {
					fs.Creat(t, n)
				}
				start := time.Now()
				for i := 0; i < iters; i++ {
					fs.Fork(t)
					t.SyscallReturn()
				}
				return time.Since(start)
			})
		}},
		{"mmap", func(k *kernel.Kernel, iters int) time.Duration {
			fs := vfs.New(k)
			return runTimed(k, func(t *kernel.Task) time.Duration {
				start := time.Now()
				for i := 0; i < iters; i++ {
					r := fs.MmapTouch(t, 8)
					fs.Munmap(t, r)
					t.SyscallReturn()
				}
				return time.Since(start)
			})
		}},
	}
}

// RunLMBench measures every Table 5 workload with OEMU instrumentation off
// (the plain kernel) and on, over `iters` operations each, and returns the
// rows. The paper's absolute microseconds are testbed-specific; the
// reproducible quantity is the overhead column (paper: 3.0x-59.0x).
func RunLMBench(iters int) []LMBenchRow {
	var rows []LMBenchRow
	for _, w := range workloads() {
		measure := func(instrumented bool) float64 {
			k := kernel.New(4)
			k.Instrumented = instrumented
			if !instrumented {
				k.Mem.Sanitize = false // the plain kernel has no KASAN either
			}
			d := w.body(k, iters)
			return float64(d.Nanoseconds()) / float64(iters)
		}
		base := measure(false)
		instr := measure(true)
		over := 0.0
		if base > 0 {
			over = instr / base
		}
		rows = append(rows, LMBenchRow{Name: w.name, BaseNs: base, InstrNs: instr, Overhead: over})
	}
	return rows
}

// FormatLMBench renders the Table 5 text table.
func FormatLMBench(rows []LMBenchRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %14s %18s %10s\n", "Tests", "plain (ns/op)", "w/ OEMU (ns/op)", "Overhead")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %14.0f %18.0f %9.1fx\n", r.Name, r.BaseNs, r.InstrNs, r.Overhead)
	}
	return sb.String()
}
