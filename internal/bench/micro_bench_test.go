package bench

import "testing"

// The Micro* drivers live in micro.go so the ozz-bench binary can run
// them through testing.Benchmark; these wrappers expose them to
// `go test -bench`.

func BenchmarkMicroOEMUStep(b *testing.B)           { MicroOEMUStep(b) }
func BenchmarkMicroOEMUCommitTracked(b *testing.B)  { MicroOEMUCommitTracked(b) }
func BenchmarkMicroOEMUDelayFlush(b *testing.B)     { MicroOEMUDelayFlush(b) }
func BenchmarkMicroModelDispatch(b *testing.B)      { MicroModelDispatch(b) }
func BenchmarkMicroSchedYield(b *testing.B)         { MicroSchedYield(b) }
func BenchmarkMicroSchedSwitch(b *testing.B)        { MicroSchedSwitch(b) }
func BenchmarkMicroKmemCheck(b *testing.B)          { MicroKmemCheck(b) }
func BenchmarkMicroCombinatorDispatch(b *testing.B) { MicroCombinatorDispatch(b) }
