package bench

import (
	"math"
	"path/filepath"
	"testing"
)

func perfReport(vals map[string]float64) *PerfReport {
	r := &PerfReport{Schema: PerfSchemaVersion}
	for name, v := range vals {
		better := "lower"
		if name == "throughput/ozz" {
			better = "higher"
		}
		r.add(name, "x", v, better)
	}
	return r
}

// TestComparePerfDirections: ratio normalization makes >1 mean "worse"
// for both metric directions, and the geomean combines them.
func TestComparePerfDirections(t *testing.T) {
	old := perfReport(map[string]float64{"micro/a/ns": 100, "throughput/ozz": 1000})
	// ns regressed 2x, throughput regressed 2x: both ratios must be 2.
	cur := perfReport(map[string]float64{"micro/a/ns": 200, "throughput/ozz": 500})
	c, err := ComparePerf(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Deltas {
		if math.Abs(d.Ratio-2) > 1e-9 {
			t.Errorf("%s ratio = %.3f, want 2", d.Name, d.Ratio)
		}
	}
	if math.Abs(c.Geomean-2) > 1e-9 {
		t.Errorf("geomean = %.3f, want 2", c.Geomean)
	}
	if !c.Failed() {
		t.Error("2x geomean regression must fail the gate")
	}

	// Improvements in both directions: ratios 0.5, verdict OK.
	c, err = ComparePerf(cur, old)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Geomean-0.5) > 1e-9 || c.Failed() {
		t.Errorf("improvement misjudged: geomean %.3f failed=%v", c.Geomean, c.Failed())
	}
}

// TestComparePerfEqual: identical reports sit exactly at geomean 1.
func TestComparePerfEqual(t *testing.T) {
	r := perfReport(map[string]float64{"micro/a/ns": 100, "micro/a/allocs": 0})
	c, err := ComparePerf(r, r)
	if err != nil {
		t.Fatal(err)
	}
	if c.Geomean != 1 || c.Failed() {
		t.Errorf("self-compare: geomean %.3f failed=%v", c.Geomean, c.Failed())
	}
}

// TestComparePerfZeroBaseline: a zero-allocs baseline regressing to
// nonzero yields an infinite delta ratio but a clamped geomean
// contribution, and zero-vs-zero counts as unchanged.
func TestComparePerfZeroBaseline(t *testing.T) {
	old := perfReport(map[string]float64{"micro/a/allocs": 0, "micro/b/allocs": 0})
	cur := perfReport(map[string]float64{"micro/a/allocs": 3, "micro/b/allocs": 0})
	c, err := ComparePerf(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c.Deltas[0].Ratio, 1) {
		t.Errorf("worst delta ratio = %v, want +Inf", c.Deltas[0].Ratio)
	}
	// Clamped at 10x for one of two metrics: geomean = sqrt(10*1).
	if want := math.Sqrt(10); math.Abs(c.Geomean-want) > 1e-9 {
		t.Errorf("geomean = %.3f, want %.3f", c.Geomean, want)
	}
	if !c.Failed() {
		t.Error("alloc regression from zero must fail the gate")
	}
}

// TestComparePerfSchemaAndMissing: schema mismatches refuse to compare;
// metrics present on only one side are reported but not scored.
func TestComparePerfSchemaAndMissing(t *testing.T) {
	old := perfReport(map[string]float64{"micro/a/ns": 100, "micro/gone/ns": 5})
	cur := perfReport(map[string]float64{"micro/a/ns": 100, "micro/new/ns": 7})
	c, err := ComparePerf(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Deltas) != 1 || c.Geomean != 1 {
		t.Errorf("scored %d deltas (geomean %.3f), want only the shared metric", len(c.Deltas), c.Geomean)
	}
	if len(c.MissingOld) != 1 || c.MissingOld[0] != "micro/new/ns" {
		t.Errorf("MissingOld = %v", c.MissingOld)
	}
	if len(c.MissingNew) != 1 || c.MissingNew[0] != "micro/gone/ns" {
		t.Errorf("MissingNew = %v", c.MissingNew)
	}
	old.Schema++
	if _, err := ComparePerf(old, cur); err == nil {
		t.Error("schema mismatch must refuse to compare")
	}
}

// TestPerfReportRoundTrip: WriteFile/ReadPerfReport preserve the report.
func TestPerfReportRoundTrip(t *testing.T) {
	r := perfReport(map[string]float64{"micro/a/ns": 12.5})
	r.Rev, r.Date, r.GoMaxProcs = "test", "2026-08-08", 4
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != "test" || got.Schema != PerfSchemaVersion || len(got.Metrics) != 1 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if got.Metrics[0].Name != "micro/a/ns" || got.Metrics[0].Value != 12.5 {
		t.Errorf("metric mangled: %+v", got.Metrics[0])
	}
}

// TestCollectPerfShape: one cheap collection produces every expected
// metric group with sane values (smoke only; no timing assertions).
func TestCollectPerfShape(t *testing.T) {
	r := CollectPerf(PerfOpts{Rev: "t", ThroughputBudget: 50 * 1e6, LMBenchIters: 100})
	if r.Schema != PerfSchemaVersion || r.GoMaxProcs < 1 {
		t.Fatalf("header wrong: %+v", r)
	}
	groups := map[string]int{}
	for _, m := range r.Metrics {
		switch {
		case m.Better != "higher" && m.Better != "lower":
			t.Errorf("%s has bad direction %q", m.Name, m.Better)
		case m.Value < 0:
			t.Errorf("%s negative: %f", m.Name, m.Value)
		}
		for _, p := range []string{"micro/", "overhead/", "throughput/"} {
			if len(m.Name) > len(p) && m.Name[:len(p)] == p {
				groups[p]++
			}
		}
	}
	if groups["micro/"] < 12 || groups["overhead/"] < 10 || groups["throughput/"] < 3 {
		t.Errorf("metric groups incomplete: %v", groups)
	}
}
