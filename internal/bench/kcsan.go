package bench

import (
	"fmt"
	"strings"

	"ozz/internal/baseline/kcsan"
	"ozz/internal/core"
	"ozz/internal/modules"
)

// KCSANRow is one §7 comparison scenario: what the sampling race detector
// reports vs. what OZZ finds on the same module+bug.
type KCSANRow struct {
	Scenario   string
	Bug        string
	KCSANFinds bool
	OzzFinds   bool
	Comment    string
}

// RunKCSANComparison reproduces the §7 comparison and the two §6.1 case
// studies: KCSAN sees plain races, is silenced by WRITE_ONCE/READ_ONCE
// annotations, and is structurally blind to race-free OOO bugs; OZZ finds
// all three OOO bugs.
func RunKCSANComparison(budget int) []KCSANRow {
	scenario := func(name, mod, sw, seedProg, comment string) KCSANRow {
		// KCSAN side.
		reg, _ := instrumented()
		d := kcsan.NewObs([]string{mod}, modules.Bugs(sw), 1, reg)
		target := modules.Target(mod)
		p, err := target.Parse(seedProg)
		if err != nil {
			panic(err)
		}
		races := d.Hunt(p, 120)

		// OZZ side.
		b, _ := modules.FindBug(sw)
		f := core.NewFuzzer(campaignConfig(core.Config{
			Modules: []string{mod}, Bugs: modules.Bugs(sw), Seed: 42, UseSeeds: true,
		}))
		want := b.Title
		if want == "" {
			want = b.SoftTitle
		}
		found := f.RunUntil(want, budget) != nil
		return KCSANRow{
			Scenario:   name,
			Bug:        sw,
			KCSANFinds: len(races) > 0,
			OzzFinds:   found,
			Comment:    comment,
		}
	}
	return []KCSANRow{
		scenario("plain data race", "gsm", "gsm:dlci_config_rmb",
			"r0 = gsm_open()\ngsm_activate(r0, 0x0)\ngsm_dlci_config(r0, 0x0, 0x200)\n",
			"unannotated racing accesses: both tools fire"),
		scenario("annotated race (case study 1)", "tls", "tls:sk_prot_wmb",
			"r0 = tls_socket()\ntls_init(r0)\nsock_setsockopt(r0, 0x1)\n",
			"WRITE_ONCE/READ_ONCE silence KCSAN; the OOO bug remains"),
		scenario("race-free bit lock (case study 2)", "rds", "rds:clear_bit_unlock",
			"r0 = rds_socket()\nrds_sendmsg(r0, 0x4)\nrds_sendmsg(r0, 0x3)\nrds_loop_xmit(r0)\n",
			"no data race exists; only reordering exposes the bug"),
	}
}

// FormatKCSAN renders the §7 comparison.
func FormatKCSAN(rows []KCSANRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s %-24s %-7s %-7s %s\n", "Scenario", "Bug", "KCSAN", "OZZ", "")
	for _, r := range rows {
		yn := func(b bool) string {
			if b {
				return "finds"
			}
			return "silent"
		}
		fmt.Fprintf(&sb, "%-34s %-24s %-7s %-7s %s\n", r.Scenario, r.Bug, yn(r.KCSANFinds), yn(r.OzzFinds), r.Comment)
	}
	return sb.String()
}
