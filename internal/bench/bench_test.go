package bench

import (
	"strings"
	"testing"
	"time"

	"ozz/internal/modules"
)

// TestLMBenchRowsComplete: every Table 5 workload runs on both kernel
// configurations and produces positive timings.
func TestLMBenchRowsComplete(t *testing.T) {
	rows := RunLMBench(300)
	want := []string{"null", "stat", "open/close", "File create", "File delete",
		"ctxsw 2p/0k", "pipe", "unix", "fork", "mmap"}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if r.Name != want[i] {
			t.Errorf("row %d = %q, want %q", i, r.Name, want[i])
		}
		if r.BaseNs <= 0 || r.InstrNs <= 0 || r.Overhead <= 0 {
			t.Errorf("row %s has non-positive measurements: %+v", r.Name, r)
		}
	}
	out := FormatLMBench(rows)
	if !strings.Contains(out, "Overhead") || !strings.Contains(out, "mmap") {
		t.Errorf("FormatLMBench output malformed:\n%s", out)
	}
}

// TestInstrumentationCostsSomething: the aggregate instrumented time must
// exceed the plain time (the one ordering Table 5 must always show).
func TestInstrumentationCostsSomething(t *testing.T) {
	rows := RunLMBench(500)
	var base, instr float64
	for _, r := range rows {
		base += r.BaseNs
		instr += r.InstrNs
	}
	if instr <= base {
		t.Fatalf("instrumented aggregate (%.0f ns) not slower than plain (%.0f ns)", instr, base)
	}
}

// TestThroughputComparisonShape: the baseline outpaces OZZ and the slowdown
// is reported consistently.
func TestThroughputComparisonShape(t *testing.T) {
	res := MeasureThroughput(150*time.Millisecond, nil, nil)
	if res.SyzkallerTestsPerSec <= 0 || res.OzzTestsPerSec <= 0 {
		t.Fatalf("non-positive rates: %+v", res)
	}
	if res.Slowdown < 1 {
		t.Fatalf("OZZ faster than the plain baseline (%.2fx)? %+v", res.Slowdown, res)
	}
	if !strings.Contains(res.Format(), "tests/s") {
		t.Errorf("Format output malformed: %q", res.Format())
	}
}

// TestRunOFenceCounts: the §6.4 harness reproduces 8-of-11 outside the
// patterns and every row matches its ground truth.
func TestRunOFenceCounts(t *testing.T) {
	rows, misses := RunOFence()
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	if misses != 8 {
		t.Fatalf("misses = %d, want 8", misses)
	}
	for _, r := range rows {
		if !r.GroundOK {
			t.Errorf("bug %s: detection disagrees with ground truth", r.Bug.ID)
		}
	}
	if out := FormatOFence(rows, misses); !strings.Contains(out, "8 of 11") {
		t.Errorf("FormatOFence output malformed:\n%s", out)
	}
}

// TestRunTable3AllFound: the Table 3 harness finds all 11 bugs within a
// modest budget.
func TestRunTable3AllFound(t *testing.T) {
	rows := RunTable3(80)
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Found {
			t.Errorf("bug %s not found", r.Bug.ID)
		}
	}
}

// TestRunTable4Shape: all 9 reproduce (sbitmap via its declared Migration
// strategy); the S-S/L-L split matches the paper's corpus (6+3 with the
// sbitmap S-S row included); the pinned-thread control stays negative.
func TestRunTable4Shape(t *testing.T) {
	rows := RunTable4(80)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	repro, ss, ll := 0, 0, 0
	for _, r := range rows {
		if !r.Found {
			t.Errorf("bug %s not reproduced", r.Bug.ID)
			continue
		}
		repro++
		switch r.Bug.Type {
		case "S-S":
			ss++
		case "L-L":
			ll++
		}
	}
	if repro != 9 {
		t.Errorf("reproduced %d, want 9", repro)
	}
	if ss != 6 || ll != 3 {
		t.Errorf("type split %d S-S / %d L-L, want 6/3", ss, ll)
	}
	if pinned := RunSbitmapPinned(80); pinned.Found {
		t.Error("sbitmap reproduced under pinned-thread OOO; the negative control must stay negative")
	}
}

// TestHeuristicFrontLoaded: the triggering-rank distribution is dominated
// by rank 1 (the §4.3 claim).
func TestHeuristicFrontLoaded(t *testing.T) {
	rows, dist := RunHeuristic(80)
	if len(rows) < 15 {
		t.Fatalf("only %d bugs measured", len(rows))
	}
	if dist[1] <= len(rows)/2 {
		t.Errorf("rank-1 triggers %d of %d — heuristic not front-loaded", dist[1], len(rows))
	}
}

// TestKCSANComparisonShape reproduces the §7 table: KCSAN fires only on the
// plain race; OZZ fires on all three.
func TestKCSANComparisonShape(t *testing.T) {
	rows := RunKCSANComparison(80)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[0].KCSANFinds {
		t.Error("KCSAN missed the plain data race")
	}
	if rows[1].KCSANFinds || rows[2].KCSANFinds {
		t.Error("KCSAN fired on an annotated/race-free scenario")
	}
	for _, r := range rows {
		if !r.OzzFinds {
			t.Errorf("OZZ missed %s", r.Bug)
		}
	}
	_ = modules.AllBugs
}
