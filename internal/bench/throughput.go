package bench

import (
	"fmt"
	"time"

	"ozz/internal/baseline/inorder"
	"ozz/internal/core"
	"ozz/internal/modules"
)

// ThroughputResult is the §6.3.2 comparison: executed test programs per
// second for the syzkaller-style baseline (plain kernel, sequential
// execution) and for OZZ (instrumented kernel, profiling, hint calculation,
// and the full set of hypothetical-barrier MTI runs per program). The paper
// measures 7.33 vs 0.92 tests/s — a 7.9x drop; the reproducible quantity
// here is the slowdown factor.
type ThroughputResult struct {
	SyzkallerTestsPerSec float64
	OzzTestsPerSec       float64
	Slowdown             float64
	// OzzMTIsPerProgram reports how much extra work each OZZ "test"
	// carries (hypothetical-barrier executions per program).
	OzzMTIsPerProgram float64
}

// MeasureThroughput runs both fuzzers for (at least) the given wall-clock
// budget per side and reports programs/second.
func MeasureThroughput(budget time.Duration, mods []string, bugs modules.BugSet) ThroughputResult {
	// Baseline: syzkaller-style sequential fuzzing on the plain kernel.
	sz := inorder.NewSyzkaller(mods, bugs, 1)
	start := time.Now()
	for time.Since(start) < budget {
		for i := 0; i < 8; i++ {
			sz.Step()
		}
	}
	szRate := float64(sz.Execs) / time.Since(start).Seconds()

	// OZZ: the full pipeline (STI + profile + hints + MTIs).
	f := core.NewFuzzer(core.Config{Modules: mods, Bugs: bugs, Seed: 1, UseSeeds: true})
	start = time.Now()
	for time.Since(start) < budget {
		f.Step()
	}
	elapsed := time.Since(start).Seconds()
	ozzRate := float64(f.Stats.Steps) / elapsed

	res := ThroughputResult{
		SyzkallerTestsPerSec: szRate,
		OzzTestsPerSec:       ozzRate,
	}
	if ozzRate > 0 {
		res.Slowdown = szRate / ozzRate
	}
	if f.Stats.Steps > 0 {
		res.OzzMTIsPerProgram = float64(f.Stats.MTIs) / float64(f.Stats.Steps)
	}
	return res
}

// Format renders the §6.3.2 comparison.
func (r ThroughputResult) Format() string {
	return fmt.Sprintf(
		"syzkaller baseline: %8.1f tests/s\n"+
			"OZZ:                %8.1f tests/s  (%.1fx slower; %.1f hypothetical-barrier runs per program)\n",
		r.SyzkallerTestsPerSec, r.OzzTestsPerSec, r.Slowdown, r.OzzMTIsPerProgram)
}
