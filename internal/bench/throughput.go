package bench

import (
	"fmt"
	"strings"
	"time"

	"ozz/internal/baseline/inorder"
	"ozz/internal/core"
	"ozz/internal/modules"
)

// ThroughputResult is the §6.3.2 comparison: executed test programs per
// second for the syzkaller-style baseline (plain kernel, sequential
// execution) and for OZZ (instrumented kernel, profiling, hint calculation,
// and the full set of hypothetical-barrier MTI runs per program). The paper
// measures 7.33 vs 0.92 tests/s — a 7.9x drop; the reproducible quantity
// here is the slowdown factor.
type ThroughputResult struct {
	SyzkallerTestsPerSec float64
	OzzTestsPerSec       float64
	Slowdown             float64
	// OzzMTIsPerProgram reports how much extra work each OZZ "test"
	// carries (hypothetical-barrier executions per program).
	OzzMTIsPerProgram float64
	// SyzkallerRecycleRate is the baseline's pooled-kernel reuse rate —
	// now that both sides run on the shared engine, the comparison is
	// apples-to-apples on kernel-lifecycle cost too.
	SyzkallerRecycleRate float64
	// OzzRecycleRate is OZZ's pooled-kernel reuse rate over the same
	// measurement window.
	OzzRecycleRate float64
	// Parallel holds the worker-scaling rows (Pool executor at each
	// requested worker count); empty when only the serial comparison was
	// measured.
	Parallel []ParallelRow
}

// ParallelRow is one workers column of the scaling table: OZZ campaign
// throughput with the Pool executor at the given width.
type ParallelRow struct {
	Workers     int
	TestsPerSec float64
	// Speedup is relative to the 1-worker row.
	Speedup float64
}

// MeasureThroughput runs both fuzzers for (at least) the given wall-clock
// budget per side and reports programs/second (serial comparison only).
func MeasureThroughput(budget time.Duration, mods []string, bugs modules.BugSet) ThroughputResult {
	return MeasureThroughputWorkers(budget, mods, bugs, nil)
}

// MeasureThroughputWorkers is MeasureThroughput plus a worker-scaling
// sweep: for each entry of workers it runs a Pool campaign for the budget
// and records tests/s, so the §6.3.2 table can report throughput at 1, 2,
// 4, … N workers.
func MeasureThroughputWorkers(budget time.Duration, mods []string, bugs modules.BugSet, workers []int) ThroughputResult {
	// Baseline: syzkaller-style sequential fuzzing on the plain kernel.
	reg, _ := instrumented()
	sz := inorder.NewSyzkallerObs(mods, bugs, 1, reg)
	start := time.Now()
	for time.Since(start) < budget {
		for i := 0; i < 8; i++ {
			sz.Step()
		}
	}
	szRate := float64(sz.Execs) / time.Since(start).Seconds()

	// OZZ: the full pipeline (STI + profile + hints + MTIs).
	f := core.NewFuzzer(campaignConfig(core.Config{Modules: mods, Bugs: bugs, Seed: 1, UseSeeds: true}))
	start = time.Now()
	for time.Since(start) < budget {
		f.Step()
	}
	elapsed := time.Since(start).Seconds()
	ozzRate := float64(f.Stats.Steps) / elapsed

	res := ThroughputResult{
		SyzkallerTestsPerSec: szRate,
		OzzTestsPerSec:       ozzRate,
		SyzkallerRecycleRate: sz.RecycleRate(),
		OzzRecycleRate:       f.Snapshot().Perf.RecycleRate(),
	}
	if ozzRate > 0 {
		res.Slowdown = szRate / ozzRate
	}
	if f.Stats.Steps > 0 {
		res.OzzMTIsPerProgram = float64(f.Stats.MTIs) / float64(f.Stats.Steps)
	}

	// Worker-scaling rows: same campaign Config through the Pool executor.
	var base float64
	for _, w := range workers {
		p := core.NewPool(campaignConfig(core.Config{Modules: mods, Bugs: bugs, Seed: 1, UseSeeds: true}), w)
		p.RunFor(budget)
		s := p.Stats()
		row := ParallelRow{Workers: p.Workers, TestsPerSec: s.Perf.TestsPerSec}
		if base == 0 {
			base = row.TestsPerSec
		}
		if base > 0 {
			row.Speedup = row.TestsPerSec / base
		}
		res.Parallel = append(res.Parallel, row)
	}
	return res
}

// Format renders the §6.3.2 comparison, with one row per measured worker
// count when a scaling sweep was run.
func (r ThroughputResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb,
		"syzkaller baseline: %8.1f tests/s  (kernel-pool %.0f%% recycled)\n"+
			"OZZ:                %8.1f tests/s  (%.1fx slower; %.1f hypothetical-barrier runs per program; kernel-pool %.0f%% recycled)\n",
		r.SyzkallerTestsPerSec, 100*r.SyzkallerRecycleRate,
		r.OzzTestsPerSec, r.Slowdown, r.OzzMTIsPerProgram, 100*r.OzzRecycleRate)
	for _, row := range r.Parallel {
		fmt.Fprintf(&sb, "OZZ (%2d workers):   %8.1f tests/s  (%.2fx vs 1 worker)\n",
			row.Workers, row.TestsPerSec, row.Speedup)
	}
	return sb.String()
}
