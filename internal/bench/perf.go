// Perf trajectory reports: the BENCH_*.json schema, its collector, and
// the regression comparator behind `ozz-bench -bench-out/-bench-compare`
// and CI's perf gate. See docs/PERFORMANCE.md for how to read and update
// the committed trajectory.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// PerfSchemaVersion is the current BENCH_*.json schema. Bump it when a
// metric's name, unit, or direction changes meaning; the comparator
// refuses to compare across versions.
const PerfSchemaVersion = 1

// PerfReport is one measured point of the performance trajectory,
// serialized as BENCH_<rev>.json. Three metric groups: the §6.3.2
// throughput comparison (tests/s), the Table 5 instrumentation-overhead
// ratios (dimensionless, more machine-stable than raw timings), and the
// hot-path microbenchmarks (ns/op and allocs/op).
type PerfReport struct {
	// Schema is PerfSchemaVersion at write time.
	Schema int `json:"schema"`
	// Rev labels the measured revision (free-form; usually a git rev).
	Rev string `json:"rev,omitempty"`
	// Date is the measurement date (YYYY-MM-DD, UTC).
	Date string `json:"date,omitempty"`
	// GoMaxProcs records the measuring machine's parallelism.
	GoMaxProcs int `json:"gomaxprocs"`
	// Metrics is the flat measurement list, sorted by name.
	Metrics []PerfMetric `json:"metrics"`
}

// PerfMetric is one named measurement with its improvement direction.
type PerfMetric struct {
	// Name identifies the metric, e.g. "micro/oemu_step/ns".
	Name string `json:"name"`
	// Unit is the measurement unit ("tests/s", "ratio", "ns/op", ...).
	Unit string `json:"unit"`
	// Value is the measured value.
	Value float64 `json:"value"`
	// Better is "higher" or "lower" — which direction is an improvement.
	Better string `json:"better"`
}

// PerfOpts parameterizes collection.
type PerfOpts struct {
	// Rev labels the report (free-form).
	Rev string
	// ThroughputBudget is the wall-clock budget per side of the §6.3.2
	// comparison (default 1s).
	ThroughputBudget time.Duration
	// LMBenchIters is the operations-per-workload count for the Table 5
	// ratios (default 2000).
	LMBenchIters int
}

// CollectPerf measures one full trajectory point: throughput, overhead
// ratios, and every microbenchmark.
func CollectPerf(opts PerfOpts) *PerfReport {
	if opts.ThroughputBudget <= 0 {
		opts.ThroughputBudget = time.Second
	}
	if opts.LMBenchIters <= 0 {
		opts.LMBenchIters = 2000
	}
	r := &PerfReport{
		Schema:     PerfSchemaVersion,
		Rev:        opts.Rev,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	tp := MeasureThroughput(opts.ThroughputBudget, nil, nil)
	r.add("throughput/syzkaller", "tests/s", tp.SyzkallerTestsPerSec, "higher")
	r.add("throughput/ozz", "tests/s", tp.OzzTestsPerSec, "higher")
	r.add("throughput/slowdown", "ratio", tp.Slowdown, "lower")
	for _, row := range RunLMBench(opts.LMBenchIters) {
		r.add("overhead/"+row.Name, "ratio", row.Overhead, "lower")
	}
	for _, m := range Micros() {
		br := testing.Benchmark(m.Fn)
		r.add("micro/"+m.Name+"/ns", "ns/op", float64(br.NsPerOp()), "lower")
		r.add("micro/"+m.Name+"/allocs", "allocs/op", float64(br.AllocsPerOp()), "lower")
	}
	sort.Slice(r.Metrics, func(i, j int) bool { return r.Metrics[i].Name < r.Metrics[j].Name })
	return r
}

func (r *PerfReport) add(name, unit string, v float64, better string) {
	r.Metrics = append(r.Metrics, PerfMetric{Name: name, Unit: unit, Value: v, Better: better})
}

// WriteFile serializes the report as indented JSON.
func (r *PerfReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPerfReport loads a BENCH_*.json file.
func ReadPerfReport(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r PerfReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// PerfDelta is one metric's old-vs-new comparison. Ratio is
// direction-normalized so that > 1 always means "got worse": new/old for
// lower-is-better metrics, old/new for higher-is-better ones.
type PerfDelta struct {
	Name     string
	Unit     string
	Old, New float64
	Ratio    float64
}

// PerfComparison is the outcome of comparing a new report against the
// committed trajectory point.
type PerfComparison struct {
	// Deltas holds the per-metric comparisons, sorted worst-first.
	Deltas []PerfDelta
	// Geomean is the geometric mean of the direction-normalized ratios —
	// the single regression figure the tolerance band applies to.
	Geomean float64
	// MissingOld/MissingNew name metrics present in only one report
	// (informational; they do not enter the geomean).
	MissingOld, MissingNew []string
}

// ComparePerf compares new against old metric-by-metric. Metrics whose
// old value is zero are skipped for the ratio (a zero allocs/op baseline
// regressing to nonzero is reported as ratio = +Inf on that delta but
// enters the geomean clamped to 10x, so one such metric cannot saturate
// the figure alone).
func ComparePerf(old, new *PerfReport) (*PerfComparison, error) {
	if old.Schema != new.Schema {
		return nil, fmt.Errorf("schema mismatch: old v%d vs new v%d", old.Schema, new.Schema)
	}
	oldBy := make(map[string]PerfMetric, len(old.Metrics))
	for _, m := range old.Metrics {
		oldBy[m.Name] = m
	}
	c := &PerfComparison{}
	newNames := make(map[string]bool, len(new.Metrics))
	logSum, n := 0.0, 0
	for _, m := range new.Metrics {
		newNames[m.Name] = true
		o, ok := oldBy[m.Name]
		if !ok {
			c.MissingOld = append(c.MissingOld, m.Name)
			continue
		}
		d := PerfDelta{Name: m.Name, Unit: m.Unit, Old: o.Value, New: m.Value}
		worse, better := m.Value, o.Value
		if m.Better == "higher" {
			worse, better = o.Value, m.Value
		}
		switch {
		case better > 0:
			d.Ratio = worse / better
		case worse == 0:
			d.Ratio = 1 // 0 vs 0 (e.g. allocs/op held at zero)
		default:
			d.Ratio = math.Inf(1) // zero baseline regressed to nonzero
		}
		c.Deltas = append(c.Deltas, d)
		logSum += math.Log(math.Min(d.Ratio, 10))
		n++
	}
	for name := range oldBy {
		if !newNames[name] {
			c.MissingNew = append(c.MissingNew, name)
		}
	}
	sort.Strings(c.MissingOld)
	sort.Strings(c.MissingNew)
	sort.Slice(c.Deltas, func(i, j int) bool {
		if c.Deltas[i].Ratio != c.Deltas[j].Ratio {
			return c.Deltas[i].Ratio > c.Deltas[j].Ratio
		}
		return c.Deltas[i].Name < c.Deltas[j].Name
	})
	if n > 0 {
		c.Geomean = math.Exp(logSum / float64(n))
	} else {
		c.Geomean = 1
	}
	return c, nil
}

// Tolerance band of the CI gate: geomean regressions past Warn print a
// warning, past Fail the gate exits nonzero. Individual metrics are noisy
// (different machines, scheduling), which is why the band applies to the
// geomean rather than any single metric.
const (
	PerfWarnRatio = 1.05
	PerfFailRatio = 1.15
)

// Format renders the comparison as a table plus verdict line.
func (c *PerfComparison) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %12s %12s %8s\n", "metric", "old", "new", "ratio")
	for _, d := range c.Deltas {
		fmt.Fprintf(&sb, "%-32s %12.2f %12.2f %8.3f\n", d.Name, d.Old, d.New, d.Ratio)
	}
	if len(c.MissingOld) > 0 {
		fmt.Fprintf(&sb, "new metrics (no baseline): %s\n", strings.Join(c.MissingOld, ", "))
	}
	if len(c.MissingNew) > 0 {
		fmt.Fprintf(&sb, "dropped metrics: %s\n", strings.Join(c.MissingNew, ", "))
	}
	fmt.Fprintf(&sb, "geomean ratio: %.3f (warn > %.2f, fail > %.2f)\n",
		c.Geomean, PerfWarnRatio, PerfFailRatio)
	switch {
	case c.Geomean > PerfFailRatio:
		sb.WriteString("verdict: FAIL — regression beyond the tolerance band\n")
	case c.Geomean > PerfWarnRatio:
		sb.WriteString("verdict: WARN — regression within the tolerance band\n")
	default:
		sb.WriteString("verdict: OK\n")
	}
	return sb.String()
}

// Failed reports whether the comparison breaches the fail threshold.
func (c *PerfComparison) Failed() bool { return c.Geomean > PerfFailRatio }
