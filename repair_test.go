package ozz

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ozz/internal/obs"
	"ozz/internal/repair"
)

// repairIdentifiers collects every exported identifier of package repair's
// non-test files — types, funcs and methods, consts, vars, exported fields
// of exported structs, and interface methods. The repair guide must
// document all of them, and may reference nothing else by bare backticked
// CamelCase name.
func repairIdentifiers(t *testing.T) map[string]bool {
	t.Helper()
	idents := map[string]bool{
		// Declared in this package, one level up from internal/repair, but
		// referenced by docs/REPAIR.md.
		"TestRepairDocComplete": true,
	}
	dir := filepath.Join("internal", "repair")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() {
					idents[d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							if name.IsExported() {
								idents[name.Name] = true
							}
						}
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						idents[sp.Name.Name] = true
						var fields *ast.FieldList
						switch typ := sp.Type.(type) {
						case *ast.StructType:
							fields = typ.Fields
						case *ast.InterfaceType:
							fields = typ.Methods
						}
						if fields == nil {
							continue
						}
						for _, field := range fields.List {
							for _, name := range field.Names {
								if name.IsExported() {
									idents[name.Name] = true
								}
							}
						}
					}
				}
			}
		}
	}
	if len(idents) < 10 {
		t.Fatalf("repair surface came back suspiciously small: %v", sortedKeys(idents))
	}
	return idents
}

// repairJSONTags collects the json field tags of package repair's exported
// structs — the CLI's wire surface.
func repairJSONTags(t *testing.T) map[string]bool {
	t.Helper()
	tags := map[string]bool{}
	dir := filepath.Join("internal", "repair")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if field.Tag == nil {
					continue
				}
				raw := strings.Trim(field.Tag.Value, "`")
				m := regexp.MustCompile(`json:"([^",]+)`).FindStringSubmatch(raw)
				if m != nil && m[1] != "-" {
					tags[m[1]] = true
				}
			}
			return true
		})
	}
	if len(tags) == 0 {
		t.Fatal("no json tags found in internal/repair")
	}
	return tags
}

// TestRepairDocComplete diffs docs/REPAIR.md against the actual repair
// surface, both ways, mirroring TestDistributedDocComplete:
//
//   - every ozz_repair_* metric family RegisterMetrics registers is
//     documented, and every documented ozz_repair_* token is registered;
//   - every exported identifier of internal/repair appears backticked in
//     the doc, and every backticked bare CamelCase token in the doc names
//     a real repair identifier;
//   - every json wire tag of the repair structs appears backticked.
func TestRepairDocComplete(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "REPAIR.md"))
	if err != nil {
		t.Fatalf("reading repair guide: %v", err)
	}
	text := string(doc)

	// Metric families, both directions.
	reg := obs.NewRegistry()
	repair.RegisterMetrics(reg)
	registered := map[string]bool{}
	for _, n := range reg.Names() {
		if strings.HasPrefix(n, "ozz_repair_") {
			registered[n] = true
		}
	}
	documented := map[string]bool{}
	for _, tok := range regexp.MustCompile(`ozz_repair_[a-z0-9_]+`).FindAllString(text, -1) {
		documented[tok] = true
	}
	var missing, stale []string
	for n := range registered {
		if !documented[n] {
			missing = append(missing, n)
		}
	}
	for n := range documented {
		if !registered[n] {
			stale = append(stale, n)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("repair metrics registered but not documented in docs/REPAIR.md: %v", missing)
	}
	if len(stale) > 0 {
		t.Errorf("repair metrics documented in docs/REPAIR.md but not registered: %v", stale)
	}

	// Backticked tokens. Dotted references like `Fence.String` document
	// both segments; bare CamelCase tokens must name a real identifier.
	backticked := map[string]bool{}
	docNames := map[string]bool{}
	segment := regexp.MustCompile(`[A-Za-z0-9_]+`)
	for _, m := range regexp.MustCompile("`([^`\n]+)`").FindAllStringSubmatch(text, -1) {
		backticked[m[1]] = true
		for _, seg := range segment.FindAllString(m[1], -1) {
			docNames[seg] = true
		}
	}

	idents := repairIdentifiers(t)
	for _, name := range sortedKeys(idents) {
		if name == "TestRepairDocComplete" {
			continue // lives in this package, not internal/repair
		}
		if !docNames[name] {
			t.Errorf("exported repair identifier %s is not documented in docs/REPAIR.md", name)
		}
	}
	camel := regexp.MustCompile(`^[A-Z][A-Za-z0-9]*$`)
	for _, tok := range sortedKeys(backticked) {
		if camel.MatchString(tok) && !idents[tok] {
			t.Errorf("docs/REPAIR.md references `%s`, which package repair does not declare", tok)
		}
	}

	// Wire fields: every json tag appears backticked.
	for _, tag := range sortedKeys(repairJSONTags(t)) {
		if !docNames[tag] {
			t.Errorf("wire field %q of internal/repair is not documented in docs/REPAIR.md", tag)
		}
	}
}
