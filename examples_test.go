package ozz

// Examples smoke test: every example under examples/ must build and run
// to a zero exit within a small budget. The examples are the README's
// executable documentation — this is the only thing keeping them from
// rotting as the packages they demonstrate evolve.

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test builds binaries; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	bindir := t.TempDir()
	// One build invocation for all examples: far cheaper than five.
	build := exec.Command("go", "build", "-o", bindir+string(os.PathSeparator), "./examples/...")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./examples/...: %v\n%s", err, out)
	}
	// Keep runtimes bounded: the fuzz example takes an iteration budget.
	extraArgs := map[string][]string{
		"fuzz": {"-steps", "40"},
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(bindir, name)
			if runtime.GOOS == "windows" {
				bin += ".exe"
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			cmd := exec.CommandContext(ctx, bin, extraArgs[name]...)
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s did not finish within budget\n%s", name, out)
			}
			if err != nil {
				t.Fatalf("example %s exited nonzero: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
		ran++
	}
	if ran == 0 {
		t.Fatal("no examples found under examples/")
	}
}
