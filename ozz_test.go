package ozz

import (
	"strings"
	"testing"
)

// TestFacadeFuzzerRoundTrip drives the public facade end to end: build a
// fuzzer from the root package, find the Fig. 1 bug, and read the report —
// the README quickstart in test form.
func TestFacadeFuzzerRoundTrip(t *testing.T) {
	f := NewFuzzer(Config{
		Modules:  []string{"watchqueue"},
		Bugs:     Bugs("watchqueue:pipe_wmb"),
		Seed:     1,
		UseSeeds: true,
	})
	r := f.RunUntil("BUG: unable to handle kernel NULL pointer dereference in pipe_read", 60)
	if r == nil {
		t.Fatal("facade fuzzer did not find the Fig. 1 bug")
	}
	if !r.OOO || r.Type != "S-S" || !strings.Contains(r.HypBarrier, "post_one_notification") {
		t.Fatalf("report malformed: %+v", r)
	}
}

// TestFacadeCorpusMetadata: the corpus is visible through the facade with
// the paper's row counts.
func TestFacadeCorpusMetadata(t *testing.T) {
	t3, t4 := 0, 0
	for _, b := range AllBugs() {
		switch b.Table {
		case 3:
			t3++
		case 4:
			t4++
		}
	}
	if t3 != 11 || t4 != 9 {
		t.Fatalf("corpus rows %d/%d, want 11/9", t3, t4)
	}
}

// TestFacadeHarnessExports: the re-exported harnesses run.
func TestFacadeHarnessExports(t *testing.T) {
	rows := RunLMBench(200)
	if len(rows) != 10 {
		t.Fatalf("LMBench rows = %d", len(rows))
	}
	if out := FormatLMBench(rows); !strings.Contains(out, "Overhead") {
		t.Fatalf("FormatLMBench: %q", out)
	}
	ofRows, misses := RunOFence()
	if len(ofRows) != 11 || misses != 8 {
		t.Fatalf("OFence: %d rows, %d misses", len(ofRows), misses)
	}
}
