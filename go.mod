module ozz

go 1.22
