// Fuzz: a whole-corpus OZZ campaign — every module loaded, every Table 3 /
// Table 4 bug switch active — mirroring the paper's §6.1 evaluation run in
// miniature. Prints the findings as they appear and a closing summary of
// unique crash titles classified as OOO bugs.
//
//	go run ./examples/fuzz [-steps 400]
package main

import (
	"flag"
	"fmt"
	"sort"

	ozz "ozz"
)

func main() {
	steps := flag.Int("steps", 400, "fuzzer iterations")
	flag.Parse()

	var switches []string
	for _, b := range ozz.AllBugs() {
		if b.Type != "" { // every OOO bug switch on
			switches = append(switches, b.Switch)
		}
	}
	f := ozz.NewFuzzer(ozz.Config{
		Bugs:     ozz.Bugs(switches...),
		Seed:     1,
		UseSeeds: true,
	})
	for n := 0; n < *steps; n++ {
		for _, r := range f.Step() {
			tag := "crash"
			if r.OOO {
				tag = "OOO bug"
			}
			fmt.Printf("[step %3d] %-7s %s\n", n, tag, r.Title)
		}
	}

	fmt.Printf("\ncampaign: %d programs, %d hypothetical-barrier tests, %d hints, %d coverage edges\n",
		f.Stats.Steps, f.Stats.MTIs, f.Stats.Hints, f.CoverageEdges())
	var ooo, other []string
	for _, r := range f.Reports.All() {
		if r.OOO {
			ooo = append(ooo, fmt.Sprintf("%s  (%s; %s)", r.Title, r.Type, r.HypBarrier))
		} else {
			other = append(other, r.Title)
		}
	}
	sort.Strings(ooo)
	fmt.Printf("\n%d unique OOO bugs:\n", len(ooo))
	for _, t := range ooo {
		fmt.Println("  " + t)
	}
	if len(other) > 0 {
		fmt.Printf("%d other findings:\n", len(other))
		for _, t := range other {
			fmt.Println("  " + t)
		}
	}
}
