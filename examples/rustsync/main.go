// Rustsync: the paper's Fig. 10 (§10.4) — an OOO bug in Rust-style code
// using Ordering::Relaxed atomics, the classic store-buffering shape.
// Thread 1 stores x and loads y; thread 2 stores y and loads x; an
// assertion demands at least one thread saw the other's store. Under every
// in-order interleaving the assertion holds; with OEMU's delayed stores
// (store-load reordering, which Relaxed permits) both threads read 0.
//
//	go run ./examples/rustsync
package main

import (
	"fmt"

	ozz "ozz"
)

func main() {
	fmt.Println("// In thread 1                          // In thread 2")
	fmt.Println("x.store(1, Ordering::Relaxed);          y.store(1, Ordering::Relaxed);")
	fmt.Println("r1 = y.load(Ordering::Relaxed);         r2 = x.load(Ordering::Relaxed);")
	fmt.Println("// afterwards: assert!(r1 == 1 || r2 == 1)")
	fmt.Println()

	// First: exhaustive in-order exploration cannot violate the
	// assertion — the fuzzer with reordering still runs in-order
	// schedules among its tests, so we show it on the UNINSTRUMENTED
	// baseline expectations by simply noting the corpus test; here we run
	// OZZ and watch the assertion fall to a delayed store.
	f := ozz.NewFuzzer(ozz.Config{
		Modules:  []string{"rustsync"},
		Bugs:     ozz.Bugs("rustsync:relaxed_sb"),
		Seed:     3,
		UseSeeds: true,
	})
	r := f.RunUntil("kernel BUG: Relaxed store buffering: both threads read 0 in rust_check", 100)
	if r == nil {
		fmt.Println("assertion never violated (unexpected)")
		return
	}
	fmt.Println("OZZ violated the assertion via store-load reordering:")
	fmt.Print(r.String())
	fmt.Println()
	fmt.Println("OEMU is language-agnostic: it reorders memory accesses, so any kernel")
	fmt.Println("code lowered to its access callbacks — C or Rust — is testable (§4.5).")
}
