// Quickstart: drive OEMU's two mechanisms by hand — the delayed store
// operation of Fig. 3 and the versioned load operation of Fig. 4 — then run
// one end-to-end hypothetical-memory-barrier test through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ozz/internal/hints"
	"ozz/internal/kmem"
	"ozz/internal/modules"
	"ozz/internal/oemu"
	"ozz/internal/trace"

	ozz "ozz"
)

func fig3DelayedStore() {
	fmt.Println("== Fig. 3: delayed store operation ==")
	mem := kmem.New()
	mem.Sanitize = false
	em := oemu.New(mem)
	writer := em.NewThread(0)
	observer := em.NewThread(1)

	const X, Y = trace.Addr(0x1000_0000), trace.Addr(0x1000_0008)
	// delay_store_at(I1): instruction site 1's store is held in the
	// virtual store buffer.
	writer.Dir.DelayStoreAt(1)
	writer.Store(1, X, 1, trace.Plain) // I1: *X = 1 (delayed)
	writer.Store(2, Y, 2, trace.Plain) // I2: *Y = 2 (commits)
	fmt.Printf("after I1, I2:  memory X=%d Y=%d (store to X still in the buffer)\n",
		mem.Read(X), mem.Read(Y))
	fmt.Printf("observer sees: X=%d Y=%d  <- store-store reordering!\n",
		observer.Load(3, X, trace.Plain), observer.Load(4, Y, trace.Plain))
	fmt.Printf("writer itself: X=%d (store-to-load forwarding from the buffer)\n",
		writer.Load(5, X, trace.Plain))
	writer.Barrier(trace.BarrierStore) // smp_wmb(): the buffer drains
	fmt.Printf("after smp_wmb: memory X=%d Y=%d\n\n", mem.Read(X), mem.Read(Y))
}

func fig4VersionedLoad() {
	fmt.Println("== Fig. 4: versioned load operation ==")
	mem := kmem.New()
	mem.Sanitize = false
	em := oemu.New(mem)
	reader := em.NewThread(0)
	writer := em.NewThread(1)

	const W, Z = trace.Addr(0x1000_0000), trace.Addr(0x1000_0008)
	writer.Store(10, W, 1, trace.Plain) // before the window
	reader.Barrier(trace.BarrierLoad)   // t3: smp_rmb — versioning window opens
	writer.Store(11, Z, 1, trace.Plain) // t4
	writer.Store(12, W, 2, trace.Plain) // t5

	// read_old_value_at(I2): site 2's load reads from the store history.
	reader.Dir.ReadOldValueAt(2)
	r1 := reader.Load(1, W, trace.Plain) // default: the updated value
	r2 := reader.Load(2, Z, trace.Plain) // versioned: the old value
	fmt.Printf("r1=%d (updated W), r2=%d (old Z)  <- load-load reordering!\n\n", r1, r2)
}

func hypotheticalBarrierTest() {
	fmt.Println("== Hypothetical store barrier test on the Fig. 1 bug ==")
	// The watchqueue module with the poster's smp_wmb removed (the bug).
	env := ozz.NewEnv([]string{"watchqueue"}, ozz.Bugs("watchqueue:pipe_wmb"))
	target := modules.Target("watchqueue")
	p, err := target.Parse("r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n")
	if err != nil {
		panic(err)
	}
	// Phase 1: profile the single-threaded run (§4.2).
	sti := env.RunSTI(p)
	fmt.Printf("profiled %d / %d events for post / read\n",
		len(sti.CallEvents[1]), len(sti.CallEvents[2]))
	// Phase 2: Algorithm 1 computes scheduling hints.
	hs := hints.Calculate(sti.CallEvents[1], sti.CallEvents[2])
	fmt.Printf("computed %d scheduling hints; trying them by heuristic rank:\n", len(hs))
	// Phase 3: run the multi-threaded inputs.
	for rank, h := range hs {
		res := env.RunMTI(ozz.MTIOpts{Prog: p, I: 1, J: 2, Hint: h})
		if res.Crash != nil {
			fmt.Printf("rank %d hint crashed the kernel: %s\n", rank+1, res.Crash.Title)
			fmt.Printf("  missing barrier at: before %s\n", modules.SiteName(h.Sched))
			for _, s := range h.Reorder {
				fmt.Printf("  reordered: %s\n", modules.SiteName(s))
			}
			return
		}
	}
	fmt.Println("no crash (unexpected)")
}

func main() {
	fig3DelayedStore()
	fig4VersionedLoad()
	hypotheticalBarrierTest()
}
