// Watchqueue: a guided tour of the paper's Fig. 1 bug — the watch_queue
// post/read barrier pair — in all four barrier configurations. It shows that
// (a) the fully-barriered code survives every hypothetical-barrier test,
// (b) removing EITHER barrier makes OZZ crash the kernel, with the store
// test catching the missing smp_wmb and the load test catching the missing
// smp_rmb, and (c) the report pinpoints the hypothetical barrier.
//
//	go run ./examples/watchqueue
package main

import (
	"fmt"

	"ozz/internal/modules"

	ozz "ozz"
)

func campaign(name string, bugs ozz.BugSet) {
	fmt.Printf("== %s ==\n", name)
	f := ozz.NewFuzzer(ozz.Config{
		Modules:  []string{"watchqueue"},
		Bugs:     bugs,
		Seed:     7,
		UseSeeds: true,
	})
	f.Run(60)
	ooo := 0
	for _, r := range f.Reports.All() {
		if !r.OOO {
			continue
		}
		ooo++
		fmt.Printf("  OOO bug: %s\n", r.Title)
		fmt.Printf("    type: %s, missing barrier: %s\n", r.Type, r.HypBarrier)
	}
	if ooo == 0 {
		fmt.Printf("  no OOO bug found (%d hypothetical-barrier tests run)\n", f.Stats.MTIs)
	}
	fmt.Println()
}

func main() {
	fmt.Println("The Fig. 1 protocol: post_one_notification() initializes a ring entry")
	fmt.Println("(buf->len, buf->ops) and publishes it by advancing head; pipe_read()")
	fmt.Println("checks head > tail and calls buf->ops->confirm(). Correctness needs")
	fmt.Println("BOTH the poster's smp_wmb() and the reader's smp_rmb().")
	fmt.Println()

	campaign("both barriers present (fixed kernel)", nil)
	campaign("poster's smp_wmb missing (store-store reordering)",
		ozz.Bugs("watchqueue:pipe_wmb"))
	campaign("reader's smp_rmb missing (load-load reordering)",
		ozz.Bugs("watchqueue:pipe_rmb"))
	campaign("both missing", ozz.Bugs("watchqueue:pipe_wmb", "watchqueue:pipe_rmb"))

	fmt.Println("bug metadata in the corpus registry:")
	for _, b := range ozz.AllBugs() {
		if b.Module == "watchqueue" {
			fmt.Printf("  %-28s [%s] table %d: %s\n", b.Switch, b.Type, b.Table, b.Title)
		}
	}
	_ = modules.SiteName // the registry also resolves instruction sites for reports
}
