// Triage: the post-discovery pipeline — given a crashing campaign finding,
// (1) classify it as a genuine OOO bug by re-running the same schedule
// WITHOUT reordering directives (the paper's authors triaged 61 crash
// titles manually, §6.1; here it is automatic), and (2) minimize the
// reproducer syzkaller-style while the crash persists.
//
//	go run ./examples/triage
package main

import (
	"fmt"
	"strings"

	"ozz/internal/core"
	"ozz/internal/hints"
	"ozz/internal/modules"

	ozz "ozz"
)

func main() {
	const title = "KASAN: slab-out-of-bounds Read in rds_loop_xmit"
	env := ozz.NewEnv([]string{"rds"}, ozz.Bugs("rds:clear_bit_unlock"))
	target := modules.Target("rds")
	p, err := target.Parse(
		"r0 = rds_socket()\nrds_sendmsg(r0, 0x4)\nrds_sendmsg(r0, 0x3)\nrds_loop_xmit(r0)\nrds_loop_xmit(r0)\n")
	if err != nil {
		panic(err)
	}

	// Find a reproducing (pair, hint).
	sti := env.RunSTI(p)
	var hit *hints.Hint
	var i, j int
	for _, pr := range [][2]int{{2, 3}, {1, 2}, {2, 4}} {
		for _, h := range hints.Calculate(sti.CallEvents[pr[0]], sti.CallEvents[pr[1]]) {
			if res := env.RunMTI(core.MTIOpts{Prog: p, I: pr[0], J: pr[1], Hint: h}); res.Crash != nil && res.Crash.Title == title {
				hit, i, j = h, pr[0], pr[1]
				break
			}
		}
		if hit != nil {
			break
		}
	}
	if hit == nil {
		fmt.Println("no reproducer found (unexpected)")
		return
	}
	fmt.Printf("reproduced: %s\n", title)
	fmt.Printf("  pair: calls %d and %d; hint: %s, sched=%s\n",
		i, j, hit.Type(), modules.SiteName(hit.Sched))

	// Step 1 — OOO triage: same schedule, reordering off.
	rerun := env.RunMTI(core.MTIOpts{Prog: p, I: i, J: j, Hint: hit, NoReorder: true})
	if rerun.Crash == nil {
		fmt.Println("  triage: crash vanishes in order -> genuine OOO bug")
	} else {
		fmt.Println("  triage: crash persists in order -> plain interleaving race")
	}

	// Step 2 — minimize the reproducer.
	minned, mi, mj := env.Minimize(p, i, j, hit, title)
	fmt.Printf("  minimized: %d calls -> %d calls (pair now %d,%d)\n",
		len(p.Calls), len(minned.Calls), mi, mj)
	for _, line := range strings.Split(strings.TrimRight(minned.String(), "\n"), "\n") {
		fmt.Println("    " + line)
	}

	// Contrast: a plain interleaving race fails the triage — the vmci
	// use-after-free reproduces on a schedule alone (destroy frees the
	// pair between the waiter's pointer load and its dereference), with
	// reordering directives OFF.
	fmt.Println()
	fmt.Println("contrast — the vmci use-after-free (a plain race, no reordering needed):")
	env2 := ozz.NewEnv([]string{"vmci"}, ozz.Bugs("vmci:uaf_race"))
	target2 := modules.Target("vmci")
	p2, err := target2.Parse("r0 = vmci_create()\nvmci_qp_alloc(r0, 0x10)\nvmci_qp_wait(r0)\nvmci_qp_destroy(r0)\n")
	if err != nil {
		panic(err)
	}
	raceHint := &hints.Hint{
		Reorderer: 0, // the waiter carries the breakpoint
		Test:      hints.StoreBarrierTest,
		Sched:     modules.SiteByName("vmci_qp_wait:READ_ONCE"),
		SchedOcc:  1,
	}
	res := env2.RunMTI(core.MTIOpts{Prog: p2, I: 2, J: 3, Hint: raceHint, NoReorder: true})
	if res.Crash != nil {
		fmt.Printf("  %s\n", res.Crash.Title)
		fmt.Println("  triage: crash reproduces with reordering OFF -> plain interleaving race")
	} else {
		fmt.Println("  (schedule did not hit the race)")
	}
}
